"""Three-way differential-testing oracle: reference × incremental × array.

Every workload here is built ONCE and run through all three engines (job
uids come from a process-global counter, so the engines must see the same
``Instance``), and every component of the run — ledger, schedule, event
log, executed/dropped uid sets — must match byte for byte.  This is the
contract that lets the perf harness claim speedups on identical
behaviour, and it is deliberately redundant with the pairwise suite in
``tests/policies/test_incremental_equivalence.py``: a bug that slips past
one engine pair still has to agree with the third.

The cross-process leg re-runs a string-colored three-way comparison in a
fresh subprocess per ``PYTHONHASHSEED`` in {1, 7, 1234}: string colors
hash differently under every seed, so any raw-set iteration order leaking
into a schedule diverges here even if the in-process legs agree.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.digest import result_digest
from repro.core.engine import ENGINES, engine_of, make_simulator, resolve_engine
from repro.core.simulator import simulate
from repro.experiments.perf import _string_relabel
from repro.policies import make_policy
from repro.policies.dlru_edf import DeltaLRUEDFPolicy
from repro.policies.edf import SeqEDFPolicy
from repro.workloads.generators import (
    bursty_workload,
    rate_limited_workload,
)
from repro.workloads.scenarios import (
    background_shortterm_instance,
    datacenter_workload,
    router_workload,
)


def _three_way(instance, make_pol, n, speed=1):
    """Run ``instance`` on all three engines; assert full bit-identity."""
    runs = {}
    for engine in ENGINES:
        sim = make_simulator(
            instance,
            make_pol(incremental=engine != "reference"),
            n,
            engine=engine,
            speed=speed,
        )
        assert engine_of(sim) == engine
        runs[engine] = sim.run()
    ref = runs["reference"]
    for engine in ("incremental", "array"):
        other = runs[engine]
        assert other.ledger.summary() == ref.ledger.summary(), engine
        assert other.schedule.to_json() == ref.schedule.to_json(), engine
        assert [repr(e) for e in other.events] == [
            repr(e) for e in ref.events
        ], engine
        assert sorted(other.executed_uids) == sorted(ref.executed_uids)
        assert sorted(other.dropped_uids) == sorted(ref.dropped_uids)
    digests = {result_digest(run) for run in runs.values()}
    assert len(digests) == 1
    return digests.pop()


def _policy(name, delta):
    return lambda incremental: make_policy(name, delta, incremental=incremental)


class TestRegistry:
    def test_engines_tuple(self):
        assert ENGINES == ("reference", "incremental", "array")

    def test_resolve_engine_name_wins(self):
        assert resolve_engine("array", incremental=False) == "array"

    def test_resolve_engine_maps_legacy_bool(self):
        assert resolve_engine(None, incremental=True) == "incremental"
        assert resolve_engine(None, incremental=False) == "reference"
        assert resolve_engine(None) == "incremental"

    def test_resolve_engine_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("vectorised")

    def test_make_simulator_rejects_unknown(self):
        inst = rate_limited_workload(num_colors=4, horizon=32, delta=4, seed=0)
        with pytest.raises(ValueError, match="unknown engine"):
            make_simulator(inst, make_policy("edf", 4), 8, engine="fast")

    def test_simulate_engine_kwarg(self):
        inst = rate_limited_workload(num_colors=6, horizon=96, delta=4, seed=3)
        digests = {
            result_digest(
                simulate(
                    inst,
                    make_policy("dlru-edf", 4, incremental=e != "reference"),
                    n=8,
                    engine=e,
                )
            )
            for e in ENGINES
        }
        assert len(digests) == 1


class TestEseriesWorkloads:
    """The scenario workloads behind E10/E12 and the lemma experiments."""

    @pytest.mark.parametrize("seed", [0, 7])
    def test_datacenter(self, seed):
        inst = datacenter_workload(
            num_services=8, horizon=256, delta=8, seed=seed
        )
        _three_way(inst, _policy("dlru-edf", 8), n=16)

    def test_router(self):
        inst = router_workload(num_classes=6, horizon=256, delta=4, seed=1)
        _three_way(inst, _policy("dlru-edf", 4), n=8)

    def test_background_shortterm(self):
        # Wildly mixed delay bounds (16 vs 1024) force the buckets'
        # lexsort merge fallback instead of the monotone append path.
        inst = background_shortterm_instance(
            delta=4, num_short=8, long_bound=256, quiet_after=128,
            background_jobs=128,
        )
        _three_way(inst, _policy("dlru-edf", 4), n=8)

    @pytest.mark.parametrize("policy", ["dlru", "edf", "static", "classic-lru",
                                        "greedy"])
    def test_all_registered_policies(self, policy):
        inst = datacenter_workload(num_services=6, horizon=192, delta=8, seed=2)
        _three_way(inst, _policy(policy, 8), n=8)


class TestScalingWorkloads:
    """Scaled-down points of the BENCH_perf scaling series."""

    def test_scaling_horizon(self):
        inst = rate_limited_workload(num_colors=8, horizon=512, delta=4, seed=0)
        _three_way(inst, _policy("dlru-edf", 4), n=16)

    def test_scaling_colors(self):
        inst = rate_limited_workload(num_colors=64, horizon=128, delta=4, seed=0)
        _three_way(inst, _policy("dlru-edf", 4), n=16)

    def test_scaling_resources(self):
        # n far above the live job count: the reference engine scans every
        # location, the array engine must agree while touching almost none.
        inst = rate_limited_workload(num_colors=16, horizon=128, delta=4, seed=0)
        _three_way(inst, _policy("dlru-edf", 4), n=256)

    def test_bursty(self):
        inst = bursty_workload(num_colors=10, horizon=192, delta=4, seed=5)
        _three_way(inst, _policy("dlru-edf", 4), n=12)


class TestSpeedAndColors:
    @pytest.mark.parametrize("speed", [1, 2])
    def test_speeds(self, speed):
        inst = rate_limited_workload(num_colors=10, horizon=160, delta=4, seed=2)
        _three_way(inst, _policy("dlru-edf", 4), n=8, speed=speed)

    def test_seq_edf_speed2(self):
        inst = rate_limited_workload(num_colors=10, horizon=160, delta=4, seed=4)
        _three_way(
            inst,
            lambda incremental: SeqEDFPolicy(4, incremental=incremental),
            n=8,
            speed=2,
        )

    @pytest.mark.parametrize("speed", [1, 2])
    def test_string_colors(self, speed):
        inst = _string_relabel(
            rate_limited_workload(num_colors=12, horizon=160, delta=4, seed=6)
        )
        _three_way(inst, _policy("dlru-edf", 4), n=8, speed=speed)

    def test_uneven_split(self):
        inst = bursty_workload(num_colors=10, horizon=160, delta=4, seed=1)
        _three_way(
            inst,
            lambda incremental: DeltaLRUEDFPolicy(
                4, lru_fraction=0.35, incremental=incremental
            ),
            n=12,
        )


_CHILD = """
import json, sys
from repro.core.digest import result_digest
from repro.core.engine import ENGINES, make_simulator
from repro.experiments.perf import _string_relabel
from repro.policies import make_policy
from repro.workloads.generators import rate_limited_workload

instance = _string_relabel(
    rate_limited_workload(num_colors=16, horizon=192, delta=4, seed=0)
)
out = {}
for engine in ENGINES:
    policy = make_policy("dlru-edf", 4, incremental=engine != "reference")
    out[engine] = result_digest(
        make_simulator(instance, policy, 16, engine=engine).run()
    )
print(json.dumps(out))
"""


class TestHashseedLegs:
    def test_three_way_identical_across_hash_seeds(self):
        # One subprocess per PYTHONHASHSEED; every seed and every engine
        # must produce the one true digest for this workload.
        src_root = str(Path(__file__).resolve().parents[2] / "src")
        digests = {}
        for seed in (1, 7, 1234):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = str(seed)
            env["PYTHONPATH"] = (
                src_root + os.pathsep + env.get("PYTHONPATH", "")
            )
            proc = subprocess.run(
                [sys.executable, "-c", _CHILD],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests[seed] = json.loads(proc.stdout)
        flat = {d for per_seed in digests.values() for d in per_seed.values()}
        assert len(flat) == 1, digests
