"""Unit tests for repro.core.events."""

from repro.core.events import (
    ArrivalEvent,
    DropEvent,
    EventLog,
    ExecutionEvent,
    ReconfigEvent,
)
from repro.core.job import BLACK, Job


def J(color=0):
    return Job(color=color, arrival=0, delay_bound=1)


class TestEventLog:
    def test_disabled_log_drops_events(self):
        log = EventLog(enabled=False)
        log.append(ArrivalEvent(0, 0, J()))
        assert len(log) == 0

    def test_typed_views(self):
        log = EventLog()
        log.append(ArrivalEvent(0, 0, J()))
        log.append(DropEvent(1, 0, J()))
        log.append(ReconfigEvent(1, 0, 0, BLACK, 0))
        log.append(ExecutionEvent(1, 0, 0, J()))
        assert len(log.arrivals()) == 1
        assert len(log.drops()) == 1
        assert len(log.reconfigs()) == 1
        assert len(log.executions()) == 1
        assert len(log) == 4

    def test_iteration_preserves_order(self):
        log = EventLog()
        events = [ArrivalEvent(i, 0, J()) for i in range(5)]
        for e in events:
            log.append(e)
        assert [e.round for e in log] == [0, 1, 2, 3, 4]

    def test_reconfig_event_fields(self):
        event = ReconfigEvent(3, 1, 2, BLACK, 7)
        assert event.round == 3
        assert event.mini_round == 1
        assert event.location == 2
        assert event.old_color is BLACK
        assert event.new_color == 7
