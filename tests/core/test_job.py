"""Unit tests for repro.core.job."""

import pytest

from repro.core.job import BLACK, Job, color_sort_key


class TestJobConstruction:
    def test_basic_fields(self):
        job = Job(color=3, arrival=5, delay_bound=4)
        assert job.color == 3
        assert job.arrival == 5
        assert job.delay_bound == 4

    def test_deadline_is_arrival_plus_bound(self):
        assert Job(color=0, arrival=5, delay_bound=4).deadline == 9

    def test_uids_are_unique(self):
        a = Job(color=0, arrival=0, delay_bound=1)
        b = Job(color=0, arrival=0, delay_bound=1)
        assert a.uid != b.uid

    def test_explicit_uid_respected(self):
        assert Job(color=0, arrival=0, delay_bound=1, uid=99).uid == 99

    def test_black_color_rejected(self):
        with pytest.raises(ValueError, match="non-black"):
            Job(color=BLACK, arrival=0, delay_bound=1)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError, match="arrival"):
            Job(color=0, arrival=-1, delay_bound=1)

    def test_zero_delay_bound_rejected(self):
        with pytest.raises(ValueError, match="delay bound"):
            Job(color=0, arrival=0, delay_bound=0)

    def test_frozen(self):
        job = Job(color=0, arrival=0, delay_bound=1)
        with pytest.raises(Exception):
            job.color = 1  # type: ignore[misc]


class TestExecutableWindow:
    def test_executable_at_arrival(self):
        job = Job(color=0, arrival=3, delay_bound=2)
        assert job.executable_in(3)

    def test_executable_until_deadline_minus_one(self):
        job = Job(color=0, arrival=3, delay_bound=2)
        assert job.executable_in(4)
        assert not job.executable_in(5)

    def test_not_executable_before_arrival(self):
        assert not Job(color=0, arrival=3, delay_bound=2).executable_in(2)

    def test_bound_one_single_round_window(self):
        job = Job(color=0, arrival=7, delay_bound=1)
        assert job.executable_in(7)
        assert not job.executable_in(8)


class TestDerived:
    def test_derived_points_to_origin(self):
        native = Job(color=0, arrival=3, delay_bound=4)
        derived = native.derived(color=(0, 1))
        assert derived.origin == native.uid
        assert derived.color == (0, 1)
        assert derived.arrival == native.arrival

    def test_chained_derivation_keeps_native_origin(self):
        native = Job(color=0, arrival=3, delay_bound=4)
        first = native.derived(arrival=4, delay_bound=2)
        second = first.derived(color=(0, 0))
        assert second.origin == native.uid

    def test_derived_overrides(self):
        native = Job(color=0, arrival=3, delay_bound=4)
        derived = native.derived(arrival=4, delay_bound=2)
        assert derived.arrival == 4
        assert derived.delay_bound == 2
        assert derived.deadline == 6


class TestSortKey:
    def test_deadline_first(self):
        early = Job(color=5, arrival=0, delay_bound=2)
        late = Job(color=0, arrival=0, delay_bound=4)
        assert early.sort_key() < late.sort_key()

    def test_tie_broken_by_delay_bound(self):
        # same deadline 4, bounds 2 vs 4
        tight = Job(color=9, arrival=2, delay_bound=2)
        loose = Job(color=0, arrival=0, delay_bound=4)
        assert tight.sort_key() < loose.sort_key()

    def test_tie_broken_by_color_order(self):
        a = Job(color=1, arrival=0, delay_bound=4)
        b = Job(color=2, arrival=0, delay_bound=4)
        assert a.sort_key() < b.sort_key()


class TestColorSortKey:
    def test_int_colors_sort_numerically(self):
        assert color_sort_key(2) < color_sort_key(10)

    def test_tuple_colors_sort_after_ints(self):
        assert color_sort_key(999) < color_sort_key((0, 0))

    def test_tuple_colors_sort_lexicographically(self):
        assert color_sort_key((1, 2)) < color_sort_key((1, 3))
        assert color_sort_key((1, 9)) < color_sort_key((2, 0))

    def test_mixed_colors_totally_ordered(self):
        colors = [(1, 0), 3, (0, 2), 7, (1, 1)]
        ordered = sorted(colors, key=color_sort_key)
        assert ordered == [3, 7, (0, 2), (1, 0), (1, 1)]
