"""Unit tests for repro.core.ledger."""

import pytest

from repro.core.ledger import CostLedger


class TestCostLedger:
    def test_empty_costs(self):
        led = CostLedger(delta=4)
        assert led.total_cost == 0
        assert led.reconfig_cost == 0
        assert led.drop_cost == 0

    def test_reconfig_cost_scales_with_delta(self):
        led = CostLedger(delta=5)
        led.charge_reconfig(0, "a")
        led.charge_reconfig(1, "b")
        assert led.reconfig_count == 2
        assert led.reconfig_cost == 10

    def test_drop_cost_unit(self):
        led = CostLedger(delta=5)
        led.charge_drop(0, "a")
        led.charge_drop(0, "a", count=3)
        assert led.drop_count == 4
        assert led.drop_cost == 4

    def test_negative_drop_rejected(self):
        led = CostLedger(delta=1)
        with pytest.raises(ValueError):
            led.charge_drop(0, "a", count=-1)

    def test_total_cost(self):
        led = CostLedger(delta=3)
        led.charge_reconfig(0, "a")
        led.charge_drop(1, "b", count=2)
        assert led.total_cost == 5

    def test_per_color_breakdowns(self):
        led = CostLedger(delta=2)
        led.charge_reconfig(0, "a")
        led.charge_reconfig(3, "a")
        led.charge_drop(1, "b")
        assert led.reconfigs_per_color["a"] == 2
        assert led.drops_per_color["b"] == 1

    def test_per_round_breakdowns(self):
        led = CostLedger(delta=2)
        led.charge_reconfig(7, "a")
        led.charge_drop(7, "b", count=2)
        assert led.reconfigs_per_round[7] == 1
        assert led.drops_per_round[7] == 2

    def test_merged(self):
        a = CostLedger(delta=2)
        a.charge_reconfig(0, "x")
        b = CostLedger(delta=2)
        b.charge_drop(1, "y")
        merged = a.merged(b)
        assert merged.total_cost == 3
        assert merged.reconfigs_per_color["x"] == 1
        assert merged.drops_per_color["y"] == 1

    def test_merged_rejects_mismatched_delta(self):
        with pytest.raises(ValueError):
            CostLedger(delta=1).merged(CostLedger(delta=2))

    def test_summary_keys(self):
        led = CostLedger(delta=1)
        assert set(led.summary()) == {
            "reconfig_count", "reconfig_cost", "drop_count", "drop_cost", "total_cost",
        }
