"""Unit tests for the problem-class taxonomy."""

import pytest

from repro.core.job import Job
from repro.core.notation import (
    BatchField,
    ProblemClass,
    classify,
    parse,
    recommended_solver,
)
from repro.core.request import Instance, RequestSequence


def inst_of(jobs, delta=2):
    return Instance(RequestSequence(jobs), delta)


def J(color, arrival, bound):
    return Job(color=color, arrival=arrival, delay_bound=bound)


class TestClassify:
    def test_rate_limited(self):
        inst = inst_of([J(0, 0, 2), J(0, 0, 2)])
        cls = classify(inst)
        assert cls.batch is BatchField.RATE_LIMITED
        assert cls.power_of_two
        assert cls.theorem.startswith("Theorem 1")

    def test_batched_not_rate_limited(self):
        inst = inst_of([J(0, 0, 2) for _ in range(3)])
        cls = classify(inst)
        assert cls.batch is BatchField.BATCHED
        assert cls.theorem.startswith("Theorem 2")

    def test_general(self):
        inst = inst_of([J(0, 1, 2)])
        cls = classify(inst)
        assert cls.batch is BatchField.ARBITRARY
        assert cls.theorem.startswith("Theorem 3")

    def test_non_power_of_two_forces_theorem_3(self):
        inst = inst_of([J(0, 0, 3)])
        assert classify(inst).theorem.startswith("Theorem 3")

    def test_notation_round_trip(self):
        inst = inst_of([J(0, 0, 2), J(0, 0, 2)])
        cls = classify(inst)
        assert cls.notation() == inst.notation()


class TestParse:
    def test_parse_general(self):
        cls = parse("[4 | 1 | D_l | 1]")
        assert cls.delta == 4
        assert cls.batch is BatchField.ARBITRARY

    def test_parse_batched(self):
        assert parse("[2 | 1 | D_l | D_l]").batch is BatchField.BATCHED

    def test_parse_rate_limited(self):
        cls = parse("[2 | 1 | D_l | D_l (rate-limited)]")
        assert cls.batch is BatchField.RATE_LIMITED

    def test_parse_float_delta(self):
        assert parse("[2.5 | 1 | D_l | 1]").delta == 2.5

    def test_parse_garbage(self):
        with pytest.raises(ValueError):
            parse("[?? | nope]")

    def test_parse_inverts_notation(self):
        for batch in BatchField:
            cls = ProblemClass(delta=3, batch=batch, power_of_two=True)
            assert parse(cls.notation()) == cls


class TestRecommendedSolver:
    def test_rate_limited_gets_direct_solver(self):
        from repro.reductions.pipeline import solve_rate_limited

        inst = inst_of([J(0, 0, 2), J(0, 0, 2)])
        assert recommended_solver(inst) is solve_rate_limited

    def test_batched_gets_distribute(self):
        from repro.reductions.pipeline import solve_batched

        inst = inst_of([J(0, 0, 2) for _ in range(3)])
        assert recommended_solver(inst) is solve_batched

    def test_general_gets_varbatch(self):
        from repro.reductions.pipeline import solve_online

        inst = inst_of([J(0, 1, 2)])
        assert recommended_solver(inst) is solve_online

    def test_recommended_solver_runs(self):
        inst = inst_of([J(0, 1, 4), J(1, 2, 4)])
        result = recommended_solver(inst)(inst, n=8)
        assert result.total_cost >= 0
