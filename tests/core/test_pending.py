"""Unit tests for repro.core.pending."""

import pytest

from repro.core.job import Job
from repro.core.pending import PendingPool, PendingStore


def J(color, arrival, bound):
    return Job(color=color, arrival=arrival, delay_bound=bound)


class TestPendingPool:
    def test_rejects_wrong_color(self):
        pool = PendingPool(0)
        with pytest.raises(ValueError):
            pool.add(J(1, 0, 2))

    def test_idle_transitions(self):
        pool = PendingPool(0)
        assert pool.idle
        pool.add(J(0, 0, 2))
        assert not pool.idle
        pool.pop()
        assert pool.idle

    def test_pop_earliest_deadline(self):
        pool = PendingPool(0)
        late = J(0, 4, 4)
        early = J(0, 0, 2)
        pool.add(late)
        pool.add(early)
        assert pool.pop().uid == early.uid

    def test_peek_does_not_remove(self):
        pool = PendingPool(0)
        job = J(0, 0, 2)
        pool.add(job)
        assert pool.peek().uid == job.uid
        assert len(pool) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            PendingPool(0).pop()

    def test_earliest_deadline(self):
        pool = PendingPool(0)
        assert pool.earliest_deadline() is None
        pool.add(J(0, 2, 2))
        assert pool.earliest_deadline() == 4

    def test_remove_arbitrary(self):
        pool = PendingPool(0)
        a, b = J(0, 0, 2), J(0, 0, 4)
        pool.add(a)
        pool.add(b)
        pool.remove(a)
        assert len(pool) == 1
        assert pool.pop().uid == b.uid

    def test_drop_expired_only_due(self):
        pool = PendingPool(0)
        due = J(0, 0, 2)       # deadline 2
        not_due = J(0, 0, 4)   # deadline 4
        pool.add(due)
        pool.add(not_due)
        dropped = pool.drop_expired(2)
        assert [j.uid for j in dropped] == [due.uid]
        assert len(pool) == 1

    def test_drop_expired_removed_jobs_not_counted(self):
        pool = PendingPool(0)
        job = J(0, 0, 2)
        pool.add(job)
        pool.remove(job)
        assert pool.drop_expired(2) == []

    def test_remove_nonmember_raises(self):
        # Regression: remove() used to decrement the live count without
        # checking membership, silently corrupting idleness bookkeeping.
        pool = PendingPool(0)
        member = J(0, 0, 2)
        stranger = J(0, 0, 2)
        pool.add(member)
        with pytest.raises(KeyError):
            pool.remove(stranger)
        assert len(pool) == 1
        assert not pool.idle

    def test_remove_twice_raises(self):
        pool = PendingPool(0)
        job = J(0, 0, 2)
        pool.add(job)
        pool.remove(job)
        with pytest.raises(KeyError):
            pool.remove(job)
        assert len(pool) == 0
        assert pool.idle

    def test_remove_from_empty_pool_raises(self):
        pool = PendingPool(0)
        with pytest.raises(KeyError):
            pool.remove(J(0, 0, 2))
        assert pool.idle

    def test_contains_tracks_membership(self):
        pool = PendingPool(0)
        job = J(0, 0, 2)
        assert job not in pool
        pool.add(job)
        assert job in pool
        pool.pop()
        assert job not in pool

    def test_pending_jobs_snapshot_sorted(self):
        pool = PendingPool(0)
        jobs = [J(0, 4, 4), J(0, 0, 2), J(0, 2, 4)]
        for job in jobs:
            pool.add(job)
        snapshot = pool.pending_jobs()
        deadlines = [j.deadline for j in snapshot]
        assert deadlines == sorted(deadlines)
        assert len(snapshot) == 3


class TestPendingStore:
    def test_nonidle_colors(self):
        store = PendingStore()
        store.add(J(0, 0, 2))
        store.add(J(1, 0, 4))
        store.execute_one(0)
        assert store.nonidle_colors() == [1]

    def test_idle_unknown_color(self):
        assert PendingStore().idle(42)

    def test_pending_counts(self):
        store = PendingStore()
        store.add(J(0, 0, 2))
        store.add(J(0, 0, 2))
        store.add(J(1, 0, 4))
        assert store.pending_count(0) == 2
        assert store.pending_count() == 3
        assert store.pending_count(9) == 0

    def test_execute_one_pops_earliest(self):
        store = PendingStore()
        early, late = J(0, 0, 2), J(0, 0, 4)
        store.add(late)
        store.add(early)
        assert store.execute_one(0).uid == early.uid

    def test_execute_idle_returns_none(self):
        assert PendingStore().execute_one(5) is None

    def test_drop_expired_across_colors(self):
        store = PendingStore()
        store.add(J(0, 0, 2))
        store.add(J(1, 0, 2))
        store.add(J(2, 0, 4))
        dropped = store.drop_expired(2)
        assert {j.color for j in dropped} == {0, 1}
        assert store.pending_count() == 1

    def test_all_pending_sorted_by_rank(self):
        store = PendingStore()
        store.add(J(0, 0, 8))
        store.add(J(1, 0, 2))
        ranked = store.all_pending()
        assert [j.color for j in ranked] == [1, 0]
