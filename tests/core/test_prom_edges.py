"""Edge cases for the Prometheus text codec and snapshot transforms.

Tenant names are free-form strings that end up as label values, so the
exposition codec must round-trip escapes exactly; ``repro top`` divides
and interpolates over scraped histograms, so the quantile estimator must
never emit NaN.  These are the cases the happy-path telemetry suite does
not reach.
"""

import math

from repro.telemetry.prom import parse_prometheus, render_prometheus
from repro.telemetry.quantiles import exact_quantile, histogram_quantile
from repro.telemetry.registry import (
    MetricsRegistry,
    label_key,
    parse_label_key,
    relabel_snapshot,
)

import pytest


class TestEmptySnapshot:
    def test_render_empty_is_empty_string(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""

    def test_parse_empty_text(self):
        snap = parse_prometheus("")
        assert snap["counters"] == {} and snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_relabel_empty_snapshot(self):
        out = relabel_snapshot(MetricsRegistry().snapshot(), worker="w0")
        assert out["counters"] == {} and out["histograms"] == {}


class TestEscapedLabelValues:
    @pytest.mark.parametrize("value", [
        'quote " inside',
        "back\\slash",
        "new\nline",
        'all \\ of "them"\n at once',
        "plain",
    ])
    def test_label_key_round_trips(self, value):
        key = label_key({"tenant": value})
        assert parse_label_key(key) == {"tenant": value}

    def test_exposition_round_trips_escapes(self):
        reg = MetricsRegistry()
        reg.count("jobs_total", 3, tenant='acme "prod"\nteam')
        text = render_prometheus(reg.snapshot())
        assert '\\"' in text and "\\n" in text
        parsed = parse_prometheus(text)
        assert parsed["counters"]["jobs_total"] == reg.snapshot()["counters"]["jobs_total"]

    def test_malformed_label_keys_rejected(self):
        for bad in ('a="x', 'a=x', 'a="x",', '1a="x"', 'a="x"b="y"'):
            with pytest.raises(ValueError):
                parse_label_key(bad)

    def test_relabel_preserves_escaped_values(self):
        reg = MetricsRegistry()
        reg.count("jobs_total", 1, tenant='a"b')
        out = relabel_snapshot(reg.snapshot(), shard="0")
        (key,) = out["counters"]["jobs_total"]
        assert parse_label_key(key) == {"shard": "0", "tenant": 'a"b'}

    def test_relabel_existing_labels_win(self):
        reg = MetricsRegistry()
        reg.count("jobs_total", 1, shard="7")
        out = relabel_snapshot(reg.snapshot(), shard="0")
        (key,) = out["counters"]["jobs_total"]
        assert parse_label_key(key) == {"shard": "7"}


class TestSingleBucketHistograms:
    def cell(self, buckets, bounds, total=None):
        count = sum(buckets)
        return {
            "bounds": bounds,
            "buckets": buckets,
            "sum": float(count),
            "count": total if total is not None else count,
        }

    def test_everything_in_first_bucket_interpolates_from_zero(self):
        cell = self.cell([4, 0], bounds=[10.0])
        assert histogram_quantile(cell, 0.5) == pytest.approx(5.0)

    def test_everything_in_inf_bucket_degrades_to_last_bound(self):
        cell = self.cell([0, 4], bounds=[10.0])
        assert histogram_quantile(cell, 0.99) == 10.0

    def test_round_trip_through_exposition(self):
        reg = MetricsRegistry()
        reg.observe("repro_phase_seconds", 0.0003)
        text = render_prometheus(reg.snapshot())
        parsed = parse_prometheus(text)
        assert parsed["histograms"] == reg.snapshot()["histograms"]


class TestNaNFreeGuarantees:
    def test_empty_cell_is_zero_not_nan(self):
        cell = {"bounds": [1.0], "buckets": [0, 0], "sum": 0.0, "count": 0}
        for q in (0.5, 0.99, 1.0):
            value = histogram_quantile(cell, q)
            assert value == 0.0 and not math.isnan(value)

    def test_no_bounds_cell_is_zero(self):
        cell = {"bounds": [], "buckets": [3], "sum": 1.0, "count": 3}
        assert histogram_quantile(cell, 0.5) == 0.0

    def test_exact_quantile_empty_is_zero(self):
        assert exact_quantile([], 0.99) == 0.0

    def test_bad_q_raises_instead_of_nan(self):
        with pytest.raises(ValueError):
            histogram_quantile({"bounds": [], "buckets": [], "sum": 0, "count": 0}, 0.0)
        with pytest.raises(ValueError):
            exact_quantile([1.0], 1.5)


class TestForeignExposition:
    def test_untyped_samples_degrade_to_gauges(self):
        snap = parse_prometheus('foreign_metric{x="1"} 42\n')
        assert snap["gauges"]["foreign_metric"] == {'x="1"': 42}

    def test_unparsable_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("what even is this line\n")
