"""Unit tests for repro.core.request."""

import pytest

from repro.core.job import Job
from repro.core.request import (
    Instance,
    Request,
    RequestSequence,
    sequence_from_arrivals,
)


def J(color, arrival, bound, **kw):
    return Job(color=color, arrival=arrival, delay_bound=bound, **kw)


class TestRequest:
    def test_rejects_mismatched_round(self):
        with pytest.raises(ValueError, match="round"):
            Request(0, (J(0, 1, 2),))

    def test_by_color_groups(self):
        req = Request(0, (J(0, 0, 2), J(1, 0, 2), J(0, 0, 2)))
        grouped = req.by_color()
        assert len(grouped[0]) == 2
        assert len(grouped[1]) == 1

    def test_len_and_iter(self):
        jobs = (J(0, 0, 2), J(1, 0, 2))
        req = Request(0, jobs)
        assert len(req) == 2
        assert tuple(req) == jobs


class TestRequestSequence:
    def test_horizon_extends_to_latest_deadline(self):
        seq = RequestSequence([J(0, 3, 4)])
        assert seq.horizon == 8  # deadline 7, plus the drop round

    def test_explicit_horizon_accepted(self):
        seq = RequestSequence([J(0, 0, 2)], horizon=10)
        assert seq.horizon == 10

    def test_truncating_horizon_rejected(self):
        with pytest.raises(ValueError, match="truncates"):
            RequestSequence([J(0, 3, 4)], horizon=5)

    def test_empty_sequence(self):
        seq = RequestSequence([])
        assert seq.horizon == 0
        assert seq.num_jobs == 0
        assert list(seq.jobs()) == []

    def test_request_lookup(self):
        job = J(0, 2, 2)
        seq = RequestSequence([job])
        assert seq.request(2).jobs == (job,)
        assert seq.request(0).jobs == ()

    def test_jobs_in_arrival_order(self):
        late, early = J(0, 5, 2), J(0, 1, 2)
        seq = RequestSequence([late, early])
        assert [j.arrival for j in seq.jobs()] == [1, 5]

    def test_colors_and_counts(self):
        seq = RequestSequence([J(0, 0, 2), J(1, 0, 4), J(0, 2, 2)])
        assert seq.colors() == {0, 1}
        assert seq.jobs_per_color() == {0: 2, 1: 1}

    def test_delay_bounds_map(self):
        seq = RequestSequence([J(0, 0, 2), J(1, 0, 4)])
        assert seq.delay_bounds() == {0: 2, 1: 4}

    def test_inconsistent_delay_bounds_rejected(self):
        seq = RequestSequence([J(0, 0, 2), J(0, 0, 4)])
        with pytest.raises(ValueError, match="inconsistent"):
            seq.delay_bounds()


class TestBatchPredicates:
    def test_batched_detection(self):
        assert RequestSequence([J(0, 0, 2), J(0, 4, 2)]).is_batched()
        assert not RequestSequence([J(0, 1, 2)]).is_batched()

    def test_rate_limited_detection(self):
        within = RequestSequence([J(0, 0, 2), J(0, 0, 2)])
        assert within.is_rate_limited()
        over = RequestSequence([J(0, 0, 2) for _ in range(3)])
        assert over.is_batched()
        assert not over.is_rate_limited()

    def test_unbatched_is_not_rate_limited(self):
        assert not RequestSequence([J(0, 1, 2)]).is_rate_limited()

    def test_power_of_two_bounds(self):
        assert RequestSequence([J(0, 0, 4)]).has_power_of_two_bounds()
        assert not RequestSequence([J(0, 0, 3)]).has_power_of_two_bounds()


class TestSerialization:
    def test_round_trip(self):
        seq = RequestSequence([J(0, 0, 2), J((1, 3), 4, 4)])
        restored = RequestSequence.from_json(seq.to_json())
        assert restored.horizon == seq.horizon
        originals = [(j.color, j.arrival, j.delay_bound, j.uid) for j in seq.jobs()]
        restoreds = [(j.color, j.arrival, j.delay_bound, j.uid) for j in restored.jobs()]
        assert originals == restoreds

    def test_tuple_colors_survive(self):
        seq = RequestSequence([J((2, (3, 4)), 0, 2)])
        restored = RequestSequence.from_json(seq.to_json())
        assert next(restored.jobs()).color == (2, (3, 4))


class TestInstance:
    def test_delta_validated(self):
        seq = RequestSequence([J(0, 0, 2)])
        with pytest.raises(ValueError, match="Delta"):
            Instance(seq, 0)

    def test_notation_rate_limited(self):
        seq = RequestSequence([J(0, 0, 2)])
        assert "rate-limited" in Instance(seq, 2).notation()

    def test_notation_batched(self):
        seq = RequestSequence([J(0, 0, 2) for _ in range(3)])
        assert Instance(seq, 2).notation() == "[2 | 1 | D_l | D_l]"

    def test_notation_general(self):
        seq = RequestSequence([J(0, 1, 2)])
        assert Instance(seq, 2).notation() == "[2 | 1 | D_l | 1]"


class TestSequenceFromArrivals:
    def test_mapping_form(self):
        seq = sequence_from_arrivals({0: [(0, 2), (1, 4)], 2: [(0, 2)]})
        assert seq.num_jobs == 3
        assert len(seq.request(0)) == 2

    def test_list_form(self):
        seq = sequence_from_arrivals([[(0, 2)], [], [(1, 4)]])
        assert seq.num_jobs == 2
        assert len(seq.request(1)) == 0
