"""Unit tests for repro.core.resources."""

import pytest

from repro.core.job import BLACK
from repro.core.ledger import CostLedger
from repro.core.resources import ResourceBank, multiset_distance


class TestResourceBank:
    def test_initially_black(self):
        bank = ResourceBank(3)
        assert bank.assignment() == (BLACK, BLACK, BLACK)
        assert not bank.configured_colors()

    def test_needs_positive_n(self):
        with pytest.raises(ValueError):
            ResourceBank(0)

    def test_reconfigure_charges_per_location(self):
        bank = ResourceBank(4)
        ledger = CostLedger(delta=3)
        bank.reconfigure_to(["a", "a", "b"], rnd=0, ledger=ledger)
        assert ledger.reconfig_count == 3
        assert ledger.reconfig_cost == 9
        assert bank.configured_colors() == {"a": 2, "b": 1}

    def test_unchanged_colors_are_free(self):
        bank = ResourceBank(4)
        ledger = CostLedger(delta=1)
        bank.reconfigure_to(["a", "b"], 0, ledger)
        bank.reconfigure_to(["a", "b"], 1, ledger)
        assert ledger.reconfig_count == 2  # only the initial configuration

    def test_partial_overlap_charges_difference(self):
        bank = ResourceBank(4)
        ledger = CostLedger(delta=1)
        bank.reconfigure_to(["a", "b", "c"], 0, ledger)
        bank.reconfigure_to(["b", "c", "d"], 1, ledger)
        assert ledger.reconfig_count == 4  # 3 initial + only 'd'

    def test_replication_multiplicity(self):
        bank = ResourceBank(4)
        ledger = CostLedger(delta=1)
        bank.reconfigure_to(["a", "a"], 0, ledger)
        bank.reconfigure_to(["a", "a", "a"], 1, ledger)
        assert ledger.reconfig_count == 3
        assert bank.configured_colors()["a"] == 3

    def test_shrinking_multiplicity_is_free(self):
        bank = ResourceBank(4)
        ledger = CostLedger(delta=1)
        bank.reconfigure_to(["a", "a"], 0, ledger)
        bank.reconfigure_to(["a"], 1, ledger)
        assert ledger.reconfig_count == 2
        # Surplus copy is left in place (free), not blanked.
        assert bank.configured_colors()["a"] == 2

    def test_desired_larger_than_n_rejected(self):
        bank = ResourceBank(2)
        with pytest.raises(ValueError, match="resources"):
            bank.reconfigure_to(["a", "b", "c"], 0)

    def test_surplus_kept_until_slot_needed(self):
        bank = ResourceBank(2)
        ledger = CostLedger(delta=1)
        bank.reconfigure_to(["a", "b"], 0, ledger)
        bank.reconfigure_to(["c", "a"], 1, ledger)
        # 'a' stays in place; 'b' slot recolored to 'c'.
        assert bank.configured_colors() == {"a": 1, "c": 1}
        assert ledger.reconfig_count == 3

    def test_changes_returned(self):
        bank = ResourceBank(2)
        changes = bank.reconfigure_to(["x"], 0)
        assert len(changes) == 1
        loc, old, new = changes[0]
        assert old is BLACK and new == "x"
        assert bank.color_at(loc) == "x"

    def test_locations_of(self):
        bank = ResourceBank(3)
        bank.reconfigure_to(["a", "a", "b"], 0)
        assert len(bank.locations_of("a")) == 2
        assert len(bank.locations_of("b")) == 1

    def test_is_configured(self):
        bank = ResourceBank(2)
        bank.reconfigure_to(["a"], 0)
        assert bank.is_configured("a")
        assert not bank.is_configured("z")

    def test_set_color_explicit(self):
        bank = ResourceBank(2)
        ledger = CostLedger(delta=2)
        assert bank.set_color(1, "q", 0, ledger)
        assert not bank.set_color(1, "q", 1, ledger)  # no-op
        assert ledger.reconfig_count == 1
        assert bank.color_at(1) == "q"


class TestMultisetDistance:
    def test_identical_is_zero(self):
        assert multiset_distance(["a", "b"], ["a", "b"]) == 0

    def test_black_absorbs(self):
        assert multiset_distance([BLACK, BLACK], ["a", "b"]) == 2

    def test_counts_missing_copies_only(self):
        assert multiset_distance(["a"], ["a", "a"]) == 1
        assert multiset_distance(["a", "a"], ["a"]) == 0

    def test_disjoint(self):
        assert multiset_distance(["a", "b"], ["c", "d"]) == 2
