"""Unit tests for repro.core.schedule and the validity checker."""

import pytest

from repro.core.job import Job
from repro.core.request import RequestSequence
from repro.core.schedule import (
    Schedule,
    ScheduleError,
    schedule_from_events,
    validate_schedule,
)


def J(color, arrival, bound, **kw):
    return Job(color=color, arrival=arrival, delay_bound=bound, **kw)


@pytest.fixture
def seq():
    return RequestSequence([
        J(0, 0, 4, uid=1),
        J(1, 0, 4, uid=2),
        J(0, 2, 4, uid=3),
    ])


class TestValidSchedules:
    def test_empty_schedule_valid(self, seq):
        led = validate_schedule(Schedule(n=1), seq, delta=2)
        assert led.drop_cost == 3
        assert led.reconfig_cost == 0

    def test_basic_execution(self, seq):
        s = Schedule(n=1)
        s.add_reconfig(0, 0, 0)
        s.add_execution(0, 0, 1)
        led = validate_schedule(s, seq, delta=2)
        assert led.total_cost == 2 + 2  # one reconfig, two drops

    def test_reconfig_applies_same_round(self, seq):
        s = Schedule(n=1)
        s.add_reconfig(2, 0, 0)
        s.add_execution(2, 0, 3)
        validate_schedule(s, seq, delta=1)

    def test_two_resources_same_round(self, seq):
        s = Schedule(n=2)
        s.add_reconfig(0, 0, 0)
        s.add_reconfig(0, 1, 1)
        s.add_execution(0, 0, 1)
        s.add_execution(0, 1, 2)
        led = validate_schedule(s, seq, delta=1)
        assert led.drop_cost == 1

    def test_double_speed_mini_rounds(self, seq):
        s = Schedule(n=1, speed=2)
        s.add_reconfig(0, 0, 0, mini=0)
        s.add_execution(0, 0, 1, mini=0)
        s.add_execution(2, 0, 3, mini=1)
        validate_schedule(s, seq, delta=1)

    def test_recolor_between_mini_rounds(self, seq):
        s = Schedule(n=1, speed=2)
        s.add_reconfig(0, 0, 0, mini=0)
        s.add_execution(0, 0, 1, mini=0)
        s.add_reconfig(0, 0, 1, mini=1)
        s.add_execution(0, 0, 2, mini=1)
        led = validate_schedule(s, seq, delta=1)
        assert led.reconfig_count == 2


class TestInvalidSchedules:
    def test_wrong_color(self, seq):
        s = Schedule(n=1)
        s.add_reconfig(0, 0, 1)
        s.add_execution(0, 0, 1)  # job 1 is color 0
        with pytest.raises(ScheduleError, match="configured"):
            validate_schedule(s, seq, delta=1)

    def test_black_resource(self, seq):
        s = Schedule(n=1)
        s.add_execution(0, 0, 1)
        with pytest.raises(ScheduleError, match="configured"):
            validate_schedule(s, seq, delta=1)

    def test_execution_before_arrival(self, seq):
        s = Schedule(n=1)
        s.add_reconfig(0, 0, 0)
        s.add_execution(1, 0, 3)  # job 3 arrives at 2
        with pytest.raises(ScheduleError, match="window"):
            validate_schedule(s, seq, delta=1)

    def test_execution_at_deadline(self, seq):
        s = Schedule(n=1)
        s.add_reconfig(0, 0, 0)
        s.add_execution(4, 0, 1)  # deadline of job 1 is 4
        with pytest.raises(ScheduleError, match="window"):
            validate_schedule(s, seq, delta=1)

    def test_double_execution(self, seq):
        s = Schedule(n=2)
        s.add_reconfig(0, 0, 0)
        s.add_reconfig(0, 1, 0)
        s.add_execution(0, 0, 1)
        s.add_execution(0, 1, 1)
        with pytest.raises(ScheduleError, match="twice"):
            validate_schedule(s, seq, delta=1)

    def test_slot_conflict(self, seq):
        s = Schedule(n=1)
        s.add_reconfig(0, 0, 0)
        s.add_execution(0, 0, 1)
        s.add_execution(0, 0, 3)
        with pytest.raises(ScheduleError, match="slot"):
            validate_schedule(s, seq, delta=1)

    def test_unknown_uid(self, seq):
        s = Schedule(n=1)
        s.add_reconfig(0, 0, 0)
        s.add_execution(0, 0, 999)
        with pytest.raises(ScheduleError, match="exist"):
            validate_schedule(s, seq, delta=1)

    def test_location_out_of_range(self, seq):
        s = Schedule(n=1)
        s.add_execution(0, 5, 1)
        with pytest.raises(ScheduleError, match="range"):
            validate_schedule(s, seq, delta=1)

    def test_mini_round_out_of_range(self, seq):
        s = Schedule(n=1, speed=1)
        s.add_execution(0, 0, 1, mini=1)
        with pytest.raises(ScheduleError, match="mini"):
            validate_schedule(s, seq, delta=1)

    def test_double_reconfig_same_slot(self, seq):
        s = Schedule(n=1)
        s.add_reconfig(0, 0, 0)
        s.add_reconfig(0, 0, 1)
        with pytest.raises(ScheduleError, match="[Tt]wo reconfigurations"):
            validate_schedule(s, seq, delta=1)


class TestCostAccounting:
    def test_cost_matches_ledger(self, seq):
        s = Schedule(n=1)
        s.add_reconfig(0, 0, 0)
        s.add_execution(0, 0, 1)
        assert s.cost(seq, delta=3) == s.ledger(seq, 3).total_cost == 3 + 2

    def test_restricted_to(self, seq):
        s = Schedule(n=1)
        s.add_reconfig(0, 0, 0)
        s.add_execution(0, 0, 1)
        s.add_execution(2, 0, 3)
        sub = s.restricted_to({1})
        assert sub.executed_uids() == {1}
        assert sub.reconfig_count() == 1


class TestScheduleFromEvents:
    def test_lifts_simulation_events(self, tiny_instance):
        from repro.core.simulator import simulate
        from repro.policies.dlru_edf import DeltaLRUEDFPolicy

        run = simulate(tiny_instance, DeltaLRUEDFPolicy(tiny_instance.delta), n=4)
        lifted = schedule_from_events(4, run.events)
        assert lifted.executed_uids() == run.schedule.executed_uids()
        assert lifted.reconfig_count() == run.schedule.reconfig_count()
        validate_schedule(lifted, tiny_instance.sequence, tiny_instance.delta)


class TestSchedulePersistence:
    def test_round_trip_preserves_everything(self, seq):
        s = Schedule(n=2, speed=2)
        s.add_reconfig(0, 0, 0)
        s.add_reconfig(1, 1, 1, mini=1)
        s.add_execution(0, 0, 1)
        s.add_execution(2, 0, 3, mini=1)
        restored = Schedule.from_json(s.to_json())
        assert restored.n == 2 and restored.speed == 2
        assert restored.reconfigs == s.reconfigs
        assert restored.executions == s.executions

    def test_tuple_colors_survive(self, seq):
        s = Schedule(n=1)
        s.add_reconfig(0, 0, (3, 1))
        restored = Schedule.from_json(s.to_json())
        assert restored.reconfigs[0].new_color == (3, 1)

    def test_restored_schedule_validates_identically(self, seq):
        s = Schedule(n=1)
        s.add_reconfig(0, 0, 0)
        s.add_execution(0, 0, 1)
        a = validate_schedule(s, seq, 2).total_cost
        b = validate_schedule(Schedule.from_json(s.to_json()), seq, 2).total_cost
        assert a == b

    def test_foreign_payload_rejected(self, seq):
        import pytest as _pytest
        with _pytest.raises(ValueError, match="not a repro schedule"):
            Schedule.from_json('{"format": "nope"}')
