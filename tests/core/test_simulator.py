"""Unit tests for repro.core.simulator."""

import pytest

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.core.schedule import validate_schedule
from repro.core.simulator import Policy, Simulator, simulate


def J(color, arrival, bound, **kw):
    return Job(color=color, arrival=arrival, delay_bound=bound, **kw)


class PinnedPolicy(Policy):
    """Configures a fixed multiset every round."""

    def __init__(self, colors):
        self.colors = colors

    def desired_configuration(self, rnd, mini):
        return self.colors


class RecordingPolicy(PinnedPolicy):
    """Also records which hooks fired, to test phase ordering."""

    def __init__(self, colors):
        super().__init__(colors)
        self.calls: list[tuple] = []

    def on_drop_phase(self, rnd, dropped):
        self.calls.append(("drop", rnd, len(dropped)))

    def on_arrival_phase(self, rnd, request):
        self.calls.append(("arrival", rnd, len(request)))

    def desired_configuration(self, rnd, mini):
        self.calls.append(("reconfig", rnd, mini))
        return super().desired_configuration(rnd, mini)

    def on_execution_phase(self, rnd, mini, executed):
        self.calls.append(("execute", rnd, mini, len(executed)))


class TestRoundLoop:
    def test_job_executed_same_round_as_arrival(self):
        inst = Instance(RequestSequence([J(0, 0, 1, uid=1)]), delta=1)
        run = simulate(inst, PinnedPolicy([0]), n=1)
        assert run.executed_uids == {1}
        assert run.drop_cost == 0

    def test_job_dropped_at_deadline(self):
        inst = Instance(RequestSequence([J(0, 0, 2, uid=1)]), delta=1)
        run = simulate(inst, PinnedPolicy([]), n=1)
        assert run.dropped_uids == {1}
        assert run.drop_cost == 1
        drop_events = run.events.drops()
        assert drop_events[0].round == 2

    def test_phase_order_within_round(self):
        inst = Instance(RequestSequence([J(0, 0, 1)]), delta=1)
        policy = RecordingPolicy([0])
        simulate(inst, policy, n=1)
        kinds = [c[0] for c in policy.calls if c[1] == 0]
        assert kinds == ["drop", "arrival", "reconfig", "execute"]

    def test_replicated_color_executes_two_jobs_per_round(self):
        jobs = [J(0, 0, 1) for _ in range(2)]
        inst = Instance(RequestSequence(jobs), delta=1)
        run = simulate(inst, PinnedPolicy([0, 0]), n=2)
        assert len(run.executed_uids) == 2

    def test_earliest_deadline_executed_first(self):
        tight = J(0, 1, 1, uid=1)
        loose = J(0, 0, 4, uid=2)
        inst = Instance(RequestSequence([tight, loose]), delta=1)
        run = simulate(inst, PinnedPolicy([0]), n=1)
        # Round 0: only loose pending? No: loose arrives at 0, tight at 1.
        # Round 1: both pending, tight must win the slot.
        assert 1 in run.executed_uids

    def test_double_speed_executes_twice_per_round(self):
        jobs = [J(0, 0, 1) for _ in range(2)]
        inst = Instance(RequestSequence(jobs), delta=1)
        run = simulate(inst, PinnedPolicy([0]), n=1, speed=2)
        assert len(run.executed_uids) == 2

    def test_invalid_speed(self):
        inst = Instance(RequestSequence([J(0, 0, 1)]), delta=1)
        with pytest.raises(ValueError):
            Simulator(inst, PinnedPolicy([]), n=1, speed=0)

    def test_steps_must_be_sequential(self):
        inst = Instance(RequestSequence([J(0, 0, 2)]), delta=1)
        sim = Simulator(inst, PinnedPolicy([]), n=1)
        sim.step(0)
        with pytest.raises(ValueError, match="order"):
            sim.step(5)


class TestCostAccounting:
    def test_reconfig_cost_charged_once_for_stable_config(self):
        jobs = [J(0, r, 1) for r in range(5)]
        inst = Instance(RequestSequence(jobs), delta=3)
        run = simulate(inst, PinnedPolicy([0]), n=1)
        assert run.reconfig_cost == 3
        assert run.drop_cost == 0

    def test_schedule_matches_ledger(self):
        jobs = [J(0, 0, 2), J(1, 0, 2), J(0, 2, 2)]
        inst = Instance(RequestSequence(jobs), delta=2)
        run = simulate(inst, PinnedPolicy([0]), n=1)
        led = validate_schedule(run.schedule, inst.sequence, inst.delta)
        assert led.total_cost == run.ledger.total_cost
        assert led.reconfig_cost == run.ledger.reconfig_cost
        assert led.drop_cost == run.ledger.drop_cost

    def test_record_events_false_keeps_costs(self):
        jobs = [J(0, 0, 2), J(1, 0, 2)]
        inst = Instance(RequestSequence(jobs), delta=2)
        loud = simulate(inst, PinnedPolicy([0]), n=1, record_events=True)
        quiet = simulate(inst, PinnedPolicy([0]), n=1, record_events=False)
        assert loud.total_cost == quiet.total_cost
        assert len(quiet.events) == 0
        # The explicit schedule is always recorded.
        assert quiet.schedule.executed_uids() == loud.schedule.executed_uids()


class TestStateViews:
    def test_is_idle_and_earliest_deadline(self):
        inst = Instance(RequestSequence([J(0, 0, 4, uid=1)]), delta=1)
        sim = Simulator(inst, PinnedPolicy([]), n=1)
        sim.step(0)
        assert not sim.is_idle(0)
        assert sim.earliest_deadline(0) == 4
        assert sim.is_idle(3)

    def test_cached_colors_view(self):
        inst = Instance(RequestSequence([J(0, 0, 2)]), delta=1)
        sim = Simulator(inst, PinnedPolicy([0, 0]), n=2)
        sim.step(0)
        assert sim.cached_colors() == {0: 2}
