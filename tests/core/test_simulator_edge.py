"""Edge-case tests for the simulator not covered by the main suite."""

import pytest

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.core.simulator import Policy, Simulator, simulate


def J(color, arrival, bound, **kw):
    return Job(color=color, arrival=arrival, delay_bound=bound, **kw)


class Pin(Policy):
    def __init__(self, colors):
        self.colors = colors

    def desired_configuration(self, rnd, mini):
        return self.colors


class TestPartialHorizon:
    def test_run_with_shorter_horizon(self):
        inst = Instance(RequestSequence([J(0, 0, 2), J(0, 4, 2)]), delta=1)
        sim = Simulator(inst, Pin([0]), n=1)
        result = sim.run(horizon=2)
        # Only the first job's window was simulated.
        assert len(result.executed_uids) == 1
        assert sim.round == 1

    def test_stepping_after_run_continues(self):
        inst = Instance(RequestSequence([J(0, 0, 2), J(0, 4, 2)]), delta=1)
        sim = Simulator(inst, Pin([0]), n=1)
        sim.run(horizon=3)
        sim.step(3)
        sim.step(4)
        assert len(sim.executed_uids) == 2

    def test_run_past_sequence_horizon_is_quiet(self):
        inst = Instance(RequestSequence([J(0, 0, 2)], horizon=10), delta=1)
        result = simulate(inst, Pin([0]), n=1)
        assert result.total_cost == 1  # one reconfig, no drops, 7 idle rounds


class TestSpeedThree:
    """The paper only needs speeds 1 and 2; the engine supports any."""

    def test_triple_speed_executes_three_per_round(self):
        jobs = [J(0, 0, 1) for _ in range(3)]
        inst = Instance(RequestSequence(jobs), delta=1)
        result = simulate(inst, Pin([0]), n=1, speed=3)
        assert len(result.executed_uids) == 3

    def test_mini_round_indices_recorded(self):
        jobs = [J(0, 0, 1) for _ in range(3)]
        inst = Instance(RequestSequence(jobs), delta=1)
        result = simulate(inst, Pin([0]), n=1, speed=3)
        minis = {ex.mini for ex in result.schedule.executions}
        assert minis == {0, 1, 2}


class TestStepOrderGuard:
    """Out-of-order steps must fail with an actionable message."""

    def make_sim(self):
        inst = Instance(
            RequestSequence([J(0, 0, 2)]), delta=1, name="guard-check"
        )
        return Simulator(inst, Pin([0]), n=1)

    def test_skipping_a_round_raises(self):
        sim = self.make_sim()
        sim.step(0)
        with pytest.raises(ValueError):
            sim.step(2)

    def test_repeating_a_round_raises(self):
        sim = self.make_sim()
        sim.step(0)
        with pytest.raises(ValueError):
            sim.step(0)

    def test_message_names_rounds_instance_and_policy(self):
        # A live server drives many simulators concurrently; the guard
        # message must say *which* run went out of order.
        sim = self.make_sim()
        sim.step(0)
        with pytest.raises(ValueError) as err:
            sim.step(5)
        text = str(err.value)
        assert "expected 1" in text
        assert "got 5" in text
        assert "'guard-check'" in text
        assert "Pin" in text


class TestLedgerViews:
    def test_result_cost_properties(self):
        inst = Instance(RequestSequence([J(0, 0, 1), J(1, 0, 1)]), delta=2)
        result = simulate(inst, Pin([0]), n=1)
        assert result.total_cost == result.reconfig_cost + result.drop_cost
        assert result.reconfig_cost == 2
        assert result.drop_cost == 1

    def test_ledger_repr_mentions_costs(self):
        inst = Instance(RequestSequence([J(0, 0, 1)]), delta=2)
        result = simulate(inst, Pin([0]), n=1)
        text = repr(result.ledger)
        assert "delta=2" in text
