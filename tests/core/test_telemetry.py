"""Unit tests for the telemetry layer (registry, recorder, trace, prom).

The load-bearing guarantees:

- the :class:`NullRecorder` default makes every instrumentation site a
  no-op (one attribute read), and
- enabling telemetry never changes what a run computes — digests with the
  recorder on and off are byte-identical on both engines.
"""

import io
import json
import re

import pytest

from repro import telemetry as tele
from repro.telemetry.recorder import (
    NullRecorder,
    TelemetryRecorder,
    get_recorder,
    set_recorder,
)
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    SCHEMA,
    MetricsRegistry,
    label_key,
    merge_snapshots,
    parse_label_key,
    relabel_snapshot,
)


class TestLabelKey:
    def test_empty(self):
        assert label_key({}) == ""

    def test_sorted_by_name(self):
        assert label_key({"b": "y", "a": "x"}) == 'a="x",b="y"'

    def test_values_stringified(self):
        assert label_key({"n": 16}) == 'n="16"'


class TestParseLabelKey:
    def test_inverts_label_key(self):
        labels = {"policy": "edf", "shard": "3"}
        assert parse_label_key(label_key(labels)) == labels

    def test_empty(self):
        assert parse_label_key("") == {}

    @pytest.mark.parametrize("bad", ["a=x", 'a="x', '="x"', "a", 'a="x",b'])
    def test_malformed_raises(self, bad):
        with pytest.raises(ValueError):
            parse_label_key(bad)


class TestRelabelSnapshot:
    @staticmethod
    def _snap():
        reg = MetricsRegistry()
        reg.count("repro_rounds_total", 5)
        reg.count("repro_drops_total", 2, phase="drop")
        reg.gauge("repro_pending_jobs", 7)
        reg.observe("sizes", 3)
        return reg.snapshot()

    def test_every_series_gains_the_extra_labels(self):
        out = relabel_snapshot(self._snap(), worker=1, shard=1)
        assert out["counters"]["repro_rounds_total"] == {
            'shard="1",worker="1"': 5
        }
        assert out["counters"]["repro_drops_total"] == {
            'phase="drop",shard="1",worker="1"': 2
        }
        assert out["gauges"]["repro_pending_jobs"] == {
            'shard="1",worker="1"': 7
        }
        cell = out["histograms"]["sizes"]['shard="1",worker="1"']
        assert cell["count"] == 1

    def test_existing_labels_win_on_collision(self):
        reg = MetricsRegistry()
        reg.count("x_total", 1, shard="9")
        out = relabel_snapshot(reg.snapshot(), shard=0, worker=0)
        assert out["counters"]["x_total"] == {'shard="9",worker="0"': 1}

    def test_relabelled_snapshots_merge_without_collisions(self):
        merged = merge_snapshots([
            relabel_snapshot(self._snap(), worker=0, shard=0),
            relabel_snapshot(self._snap(), worker=1, shard=1),
        ])
        assert len(merged["counters"]["repro_rounds_total"]) == 2
        assert sum(merged["counters"]["repro_rounds_total"].values()) == 10


class TestRegistry:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.count("hits_total")
        reg.count("hits_total", 2)
        reg.count("hits_total", policy="edf")
        snap = reg.snapshot()
        assert snap["schema"] == SCHEMA
        assert snap["counters"]["hits_total"][""] == 3
        assert snap["counters"]["hits_total"]['policy="edf"'] == 1

    def test_counter_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            MetricsRegistry().count("hits_total", -1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("pending", 5)
        reg.gauge("pending", 2)
        assert reg.snapshot()["gauges"]["pending"][""] == 2

    def test_histogram_bucket_placement_is_le(self):
        reg = MetricsRegistry()
        # DEFAULT_BUCKETS starts (1, 2, 5, ...): a value equal to a bound
        # lands in that bound's bucket (Prometheus `le` semantics).
        reg.observe("sizes", 1)
        reg.observe("sizes", 2)
        reg.observe("sizes", 3)
        reg.observe("sizes", 10**9)  # +Inf bucket
        cell = reg.snapshot()["histograms"]["sizes"][""]
        assert cell["bounds"] == list(DEFAULT_BUCKETS)
        assert cell["buckets"][0] == 1  # le=1
        assert cell["buckets"][1] == 1  # le=2
        assert cell["buckets"][2] == 1  # 3 -> le=5
        assert cell["buckets"][-1] == 1  # +Inf
        assert cell["count"] == 4
        assert cell["sum"] == 6 + 10**9

    def test_clear(self):
        reg = MetricsRegistry()
        reg.count("hits_total")
        reg.clear()
        assert reg.snapshot()["counters"] == {}

    def test_snapshot_is_json_roundtrippable(self):
        reg = MetricsRegistry()
        reg.count("hits_total", policy="edf")
        reg.observe("sizes", 3)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap


class TestMergeSnapshots:
    @staticmethod
    def _snap(counter=0, gauge=0, obs=()):
        reg = MetricsRegistry()
        if counter:
            reg.count("hits_total", counter)
        if gauge:
            reg.gauge("pending", gauge)
        for value in obs:
            reg.observe("sizes", value)
        return reg.snapshot()

    def test_counters_add_gauges_max_histograms_add(self):
        merged = merge_snapshots([
            self._snap(counter=2, gauge=7, obs=(1, 3)),
            self._snap(counter=3, gauge=4, obs=(3,)),
        ])
        assert merged["counters"]["hits_total"][""] == 5
        assert merged["gauges"]["pending"][""] == 7
        cell = merged["histograms"]["sizes"][""]
        assert cell["count"] == 3
        assert cell["sum"] == 7

    def test_merge_order_independent(self):
        snaps = [self._snap(counter=1, gauge=i, obs=(i,)) for i in (3, 1, 2)]
        assert merge_snapshots(snaps) == merge_snapshots(reversed(snaps))

    def test_empty_snapshots_skipped(self):
        merged = merge_snapshots([{}, self._snap(counter=1), {}])
        assert merged["counters"]["hits_total"][""] == 1

    def test_incompatible_bounds_raise(self):
        a = self._snap(obs=(1,))
        b = self._snap(obs=(1,))
        b["histograms"]["sizes"][""]["bounds"] = [9, 99]
        with pytest.raises(ValueError, match="incompatible bucket boundaries"):
            merge_snapshots([a, b])


class TestRecorders:
    def test_default_recorder_is_null_and_disabled(self):
        rec = get_recorder()
        assert isinstance(rec, NullRecorder)
        assert not rec.enabled
        assert not rec.tracing

    def test_null_recorder_methods_are_noops(self):
        rec = NullRecorder()
        rec.count("x")
        rec.gauge("x", 1)
        rec.observe("x", 1)
        rec.emit({"kind": "round"})
        rec.close()
        assert rec.snapshot() == {}

    def test_recording_installs_and_restores(self):
        before = get_recorder()
        with tele.recording() as rec:
            assert get_recorder() is rec
            assert rec.enabled
        assert get_recorder() is before

    def test_recording_restores_on_error(self):
        before = get_recorder()
        with pytest.raises(RuntimeError):
            with tele.recording():
                raise RuntimeError("boom")
        assert get_recorder() is before

    def test_set_recorder_none_restores_null(self):
        previous = set_recorder(TelemetryRecorder())
        try:
            assert get_recorder().enabled
        finally:
            set_recorder(previous)
        assert not get_recorder().enabled

    def test_tracing_only_with_writer(self):
        assert not TelemetryRecorder().tracing
        assert TelemetryRecorder(trace=io.StringIO()).tracing

    def test_recorder_routes_to_registry_and_writer(self):
        buf = io.StringIO()
        rec = TelemetryRecorder(trace=buf)
        rec.count("hits_total")
        rec.emit({"kind": "round", "round": 0})
        rec.close()
        assert rec.snapshot()["counters"]["hits_total"][""] == 1
        assert json.loads(buf.getvalue()) == {"kind": "round", "round": 0}


class TestTraceWriter:
    def test_emits_sorted_json_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tele.TraceWriter(str(path)) as writer:
            writer.header(instance="demo")
            writer.emit({"b": 2, "a": 1, "kind": "round"})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["schema"] == tele.TRACE_SCHEMA
        assert lines[1] == '{"a": 1, "b": 2, "kind": "round"}'

    def test_stream_destination_not_closed(self):
        buf = io.StringIO()
        writer = tele.TraceWriter(buf)
        writer.emit({"kind": "summary"})
        writer.close()
        assert not buf.closed
        assert writer.records_written == 1


PROM_COMMENT = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" ([0-9eE.+-]+|\+Inf)$"
)


class TestPrometheusRendering:
    @staticmethod
    def _render():
        reg = MetricsRegistry()
        reg.count("repro_drops_total", 7)
        reg.gauge("repro_pending_jobs", 3)
        reg.observe("sizes", 1, policy="edf")
        reg.observe("sizes", 4, policy="edf")
        reg.observe("sizes", 10**9, policy="edf")
        return tele.render_prometheus(reg.snapshot())

    def test_every_line_matches_the_text_format_grammar(self):
        for line in self._render().splitlines():
            assert PROM_COMMENT.match(line) or PROM_SAMPLE.match(line), line

    def test_counter_and_gauge_samples(self):
        text = self._render()
        assert "# TYPE repro_drops_total counter" in text
        assert "repro_drops_total 7" in text.splitlines()
        assert "# TYPE repro_pending_jobs gauge" in text
        assert "repro_pending_jobs 3" in text.splitlines()

    def test_histogram_expands_to_cumulative_buckets_sum_count(self):
        lines = self._render().splitlines()
        buckets = [l for l in lines if l.startswith("sizes_bucket{")]
        # one sample per bound plus the +Inf bucket, all carrying both labels
        assert len(buckets) == len(DEFAULT_BUCKETS) + 1
        assert all('policy="edf"' in l and 'le="' in l for l in buckets)
        counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts), "buckets must be cumulative"
        assert buckets[-1].startswith('sizes_bucket{policy="edf",le="+Inf"}')
        assert counts[-1] == 3
        assert 'sizes_sum{policy="edf"}' in "\n".join(lines)
        assert 'sizes_count{policy="edf"} 3' in lines

    def test_help_lines_cover_known_metrics(self):
        text = self._render()
        assert "# HELP repro_drops_total Jobs dropped at their deadline." in text

    def test_empty_snapshot_renders_empty(self):
        assert tele.render_prometheus(MetricsRegistry().snapshot()) == ""


class TestQuantiles:
    def test_exact_quantile_nearest_rank(self):
        samples = [0.1, 0.2, 0.3, 0.4]
        assert tele.exact_quantile(samples, 0.50) == 0.2
        assert tele.exact_quantile(samples, 1.00) == 0.4
        assert tele.exact_quantile([7.0], 0.99) == 7.0

    def test_exact_quantile_empty_and_bad_q(self):
        assert tele.exact_quantile([], 0.5) == 0.0
        with pytest.raises(ValueError):
            tele.exact_quantile([1.0], 0.0)
        with pytest.raises(ValueError):
            tele.exact_quantile([1.0], 1.5)

    def test_quantile_summary_keys_and_scale(self):
        summary = tele.quantile_summary([0.001, 0.002, 0.003], scale=1e3)
        assert sorted(summary) == ["p50", "p95", "p99"]
        assert summary["p50"] == 2.0
        assert summary["p99"] == 3.0

    def test_histogram_quantile_interpolates(self):
        reg = MetricsRegistry()
        for value in (0.5, 1.5, 1.5, 4.0):  # DEFAULT_BUCKETS: 1, 2, 5, ...
            reg.observe("sizes", value)
        cell = reg.snapshot()["histograms"]["sizes"][""]
        assert tele.histogram_quantile(cell, 0.25) <= 1.0
        assert 1.0 <= tele.histogram_quantile(cell, 0.5) <= 2.0
        assert 2.0 <= tele.histogram_quantile(cell, 0.99) <= 5.0

    def test_histogram_quantile_empty_cell(self):
        cell = {"bounds": [1, 2], "buckets": [0, 0, 0], "sum": 0.0, "count": 0}
        assert tele.histogram_quantile(cell, 0.95) == 0.0


class TestParsePrometheus:
    @staticmethod
    def _full_snapshot():
        reg = MetricsRegistry()
        reg.count("repro_serve_ticks_total", 12)
        reg.count("repro_serve_frames_total", 3, kind="submit")
        reg.gauge("repro_serve_pending_jobs", 5)
        reg.observe("repro_serve_round_seconds", 0.002)
        reg.observe("repro_serve_round_seconds", 0.3)
        reg.observe("repro_serve_admission_seconds", 0.001, )
        return reg.snapshot()

    def test_round_trips_render_output_exactly(self):
        snap = self._full_snapshot()
        assert tele.parse_prometheus(tele.render_prometheus(snap)) == snap

    def test_round_trips_relabelled_worker_snapshots(self):
        snap = relabel_snapshot(self._full_snapshot(), worker=0, shard=0)
        assert tele.parse_prometheus(tele.render_prometheus(snap)) == snap

    def test_untyped_families_degrade_to_gauges(self):
        snap = tele.parse_prometheus('foreign_metric{a="b"} 4\n')
        assert snap["gauges"]["foreign_metric"] == {'a="b"': 4}

    def test_unparsable_sample_raises(self):
        with pytest.raises(ValueError, match="unparsable sample line"):
            tele.parse_prometheus("!!! not a sample\n")


class TestObservabilityMetricFamilies:
    """Every metric family the observability PR added renders with a HELP
    line and grammar-clean samples (the prom-grammar satellite)."""

    NEW_FAMILIES = (
        "repro_serve_admission_seconds",
        "repro_serve_worker_respawns_total",
        "repro_serve_worker_commits_total",
        "repro_serve_worker_scrape_failures_total",
        "repro_serve_subscribers_dropped_total",
        "repro_serve_spans_total",
    )

    @staticmethod
    def _render_all():
        from repro.telemetry.prom import HELP

        reg = MetricsRegistry()
        for name in TestObservabilityMetricFamilies.NEW_FAMILIES:
            assert name in HELP, f"{name} has no HELP text"
            if name.endswith("_seconds"):
                reg.observe(name, 0.001, shard="0")
            else:
                reg.count(name, 1, shard="0")
        return tele.render_prometheus(reg.snapshot())

    def test_every_new_family_has_help_and_type(self):
        text = self._render_all()
        for name in self.NEW_FAMILIES:
            assert f"# HELP {name} " in text
            assert f"# TYPE {name} " in text

    def test_every_line_matches_the_text_format_grammar(self):
        for line in self._render_all().splitlines():
            assert PROM_COMMENT.match(line) or PROM_SAMPLE.match(line), line

    def test_admission_histogram_uses_pinned_buckets(self):
        from repro.telemetry.registry import BUCKETS

        reg = MetricsRegistry()
        reg.observe("repro_serve_admission_seconds", 0.001)
        cell = reg.snapshot()["histograms"]["repro_serve_admission_seconds"][""]
        assert cell["bounds"] == list(BUCKETS["repro_serve_admission_seconds"])


class TestTelemetryNeverChangesResults:
    """The contract the whole layer hangs on: observing a run is free of
    side effects — digests match with the recorder on and off, on both
    engines, including with a live trace writer."""

    @pytest.mark.parametrize("incremental", [True, False])
    def test_digests_match_with_and_without_telemetry(self, incremental):
        from repro.experiments.perf import (
            CASES,
            build_instance,
            result_digest,
            run_case,
        )

        case = CASES[0]
        instance = build_instance(case)
        plain = result_digest(
            run_case(case, incremental=incremental, record_events=True,
                     instance=instance)
        )
        with tele.recording(TelemetryRecorder(trace=io.StringIO())) as rec:
            instrumented = result_digest(
                run_case(case, incremental=incremental, record_events=True,
                         instance=instance)
            )
        assert instrumented == plain
        # and the run actually was observed
        snap = rec.snapshot()
        assert snap["counters"]["repro_rounds_total"][""] > 0

    def test_trace_records_are_deterministic(self):
        from repro.experiments.perf import CASES, build_instance, run_case

        case = CASES[0]
        instance = build_instance(case)
        texts = []
        for _ in range(2):
            buf = io.StringIO()
            with tele.recording(TelemetryRecorder(trace=buf)):
                run_case(case, incremental=True, record_events=False,
                         instance=instance)
            texts.append(buf.getvalue())
        assert texts[0] == texts[1]
        kinds = [json.loads(l)["kind"] for l in texts[0].splitlines()]
        assert kinds[0] == "header"
        assert kinds[-1] == "summary"
        assert kinds.count("round") > 0
