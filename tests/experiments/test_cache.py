"""The content-addressed result cache: keys, hits, corruption, overrides."""

import multiprocessing
import os
import pickle
import subprocess
import sys

import pytest

from repro import __version__
from repro.experiments.cache import (
    CACHE_FORMAT,
    ResultCache,
    cache_key,
    default_cache_dir,
)
from repro.experiments.runner import run_parallel


class TestCacheKey:
    def test_stable_within_process(self):
        assert cache_key("E1", "quick") == cache_key("E1", "quick")

    def test_distinguishes_every_identity_field(self):
        base = cache_key("E1", "quick", 0)
        assert cache_key("E2", "quick", 0) != base
        assert cache_key("E1", "full", 0) != base
        assert cache_key("E1", "quick", 1) != base
        assert cache_key("E1", "quick", None) != base
        assert cache_key("E1", "quick", 0, kind="montecarlo") != base
        assert cache_key("E1", "quick", 0, version="0.0.0") != base

    def test_stable_across_processes_and_hash_seeds(self):
        # The key must not depend on PYTHONHASHSEED or interpreter state:
        # workers and later sessions must address the same cells.
        code = "from repro.experiments.cache import cache_key; print(cache_key('E3', 'full', 42))"
        env = dict(os.environ, PYTHONHASHSEED="12345")
        out = subprocess.run(
            [sys.executable, "-c", code], env=env,
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == cache_key("E3", "full", 42)

    def test_versioned(self):
        # Upgrading the package must invalidate old entries; the current
        # version is baked into the current key.
        assert cache_key("E1", "quick") != cache_key(
            "E1", "quick", version=__version__ + ".post1"
        )


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("E1", "quick")
        assert cache.get(key) is None
        cache.put(key, {"answer": 42})
        assert cache.get(key) == {"answer": 42}
        assert key in cache

    def test_corrupted_entry_recovers_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("E1", "quick")
        cache.put(key, "good")
        path = cache._path(key)
        path.write_bytes(b"\x80\x04 definitely not a pickle")
        assert cache.get(key) is None  # no crash
        assert not path.exists()  # poisoned entry evicted
        cache.put(key, "recomputed")
        assert cache.get(key) == "recomputed"

    def test_wrong_shape_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("E1", "quick")
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps(["not", "the", "entry", "dict"]))
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache_key("E1", "quick"), 1)
        cache.put(cache_key("E2", "quick"), 2)
        assert cache.clear() == 2
        assert cache.get(cache_key("E1", "quick")) is None


def _hammer_same_key(root: str, key: str, writes: int, tag: int) -> None:
    """Writer process: repeatedly overwrite one cell with complete payloads."""
    cache = ResultCache(root)
    for i in range(writes):
        cache.put(key, {"tag": tag, "i": i, "payload": "x" * 4096})


def _write_key_range(root: str, start: int, stop: int) -> None:
    cache = ResultCache(root)
    for i in range(start, stop):
        cache.put(cache_key(f"K{i}", "quick"), {"cell": i})


class TestCacheConcurrency:
    def test_racing_writers_never_expose_a_torn_entry(self, tmp_path):
        # Several processes hammer the *same* key while the parent reads in
        # a tight loop.  The atomic temp-file + os.replace protocol must
        # mean every read sees either a miss or a complete payload — never
        # a partial pickle, never an exception.
        key = cache_key("RACE", "quick")
        cache = ResultCache(tmp_path)
        ctx = multiprocessing.get_context()
        writers = [
            ctx.Process(target=_hammer_same_key,
                        args=(str(tmp_path), key, 40, tag))
            for tag in range(4)
        ]
        for p in writers:
            p.start()
        try:
            observed = 0
            while any(p.is_alive() for p in writers):
                value = cache.get(key)
                if value is not None:
                    assert set(value) == {"tag", "i", "payload"}
                    assert len(value["payload"]) == 4096
                    observed += 1
        finally:
            for p in writers:
                p.join(timeout=30)
        assert observed > 0  # the race was actually exercised
        final = cache.get(key)
        assert final is not None and len(final["payload"]) == 4096

    def test_writers_on_disjoint_keys_all_land(self, tmp_path):
        ctx = multiprocessing.get_context()
        procs = [
            ctx.Process(target=_write_key_range,
                        args=(str(tmp_path), i * 10, (i + 1) * 10))
            for i in range(3)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=30)
        cache = ResultCache(tmp_path)
        for i in range(30):
            assert cache.get(cache_key(f"K{i}", "quick")) == {"cell": i}


class TestTornWrites:
    def test_truncated_entry_is_a_miss_and_evicted(self, tmp_path):
        # A torn write (power loss, SIGKILL mid-copy) leaves a prefix of a
        # valid pickle; the reader must treat it as a miss and evict it.
        cache = ResultCache(tmp_path)
        key = cache_key("E1", "quick")
        cache.put(key, {"big": list(range(1000))})
        path = cache._path(key)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert cache.get(key) is None
        assert not path.exists()

    def test_empty_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("E1", "quick")
        cache.put(key, "value")
        cache._path(key).write_bytes(b"")
        assert cache.get(key) is None

    def test_contains_validates_like_get(self, tmp_path):
        # The old implementation answered `in` with a bare exists() check,
        # so a corrupted file read as a phantom hit.  Pinned: __contains__
        # must agree with get() on every damaged entry.
        cache = ResultCache(tmp_path)
        key = cache_key("E1", "quick")
        cache.put(key, "value")
        assert key in cache
        path = cache._path(key)
        path.write_bytes(b"not a pickle at all")
        assert path.exists()
        assert key not in cache  # the lie the old exists() check told
        assert cache.get(key) is None

    def test_contains_false_on_truncated_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("E2", "quick")
        cache.put(key, {"big": list(range(1000))})
        path = cache._path(key)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 3])
        assert key not in cache

    def test_contains_miss_on_absent_key(self, tmp_path):
        assert cache_key("NEVER", "quick") not in ResultCache(tmp_path)


class TestCacheDirResolution:
    def test_repro_cache_dir_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "override"

    def test_xdg_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        assert default_cache_dir().name == "repro"
        assert ".cache" in str(default_cache_dir())

    def test_runner_honours_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "via-env"))
        report = run_parallel(["E1"], jobs=1)
        assert not report.records[0].cache_hit
        assert list((tmp_path / "via-env").glob("*/*.pkl"))


class TestRunnerCaching:
    def test_cold_then_warm(self, tmp_path):
        ids = ["E1", "E2", "E14"]
        cold = run_parallel(ids, jobs=2, cache_dir=tmp_path)
        warm = run_parallel(ids, jobs=2, cache_dir=tmp_path)
        assert cold.cache_hits == 0
        assert warm.cache_hits == len(ids)  # 100% on the rerun
        for eid in ids:
            assert cold.results[eid] == warm.results[eid]

    def test_cache_shared_across_worker_counts(self, tmp_path):
        run_parallel(["E1", "E2"], jobs=1, cache_dir=tmp_path)
        warm = run_parallel(["E1", "E2"], jobs=4, cache_dir=tmp_path)
        assert warm.cache_hits == 2

    def test_no_cache_bypasses_store(self, tmp_path):
        run_parallel(["E1"], jobs=1, cache_dir=tmp_path, use_cache=False)
        assert not list(tmp_path.glob("*/*.pkl"))
        # ... and bypasses lookup even when an entry exists.
        run_parallel(["E1"], jobs=1, cache_dir=tmp_path)
        again = run_parallel(["E1"], jobs=1, cache_dir=tmp_path, use_cache=False)
        assert again.cache_hits == 0

    def test_corrupted_entry_recomputes_not_crashes(self, tmp_path):
        cold = run_parallel(["E1"], jobs=1, cache_dir=tmp_path)
        [entry] = list(tmp_path.glob("*/*.pkl"))
        entry.write_bytes(b"truncated garbage")
        recovered = run_parallel(["E1"], jobs=1, cache_dir=tmp_path)
        assert recovered.cache_hits == 0
        assert recovered.results["E1"] == cold.results["E1"]
        # The recompute repaired the store: next run hits again.
        assert run_parallel(["E1"], jobs=1, cache_dir=tmp_path).cache_hits == 1

    def test_cached_result_round_trips_render(self, tmp_path):
        cold = run_parallel(["E4"], jobs=1, cache_dir=tmp_path)
        warm = run_parallel(["E4"], jobs=1, cache_dir=tmp_path)
        assert warm.records[0].cache_hit
        assert cold.results["E4"].render() == warm.results["E4"].render()
        assert cold.results["E4"].fingerprint() == warm.results["E4"].fingerprint()


class TestStats:
    def test_stats_table_and_payload(self, tmp_path):
        report = run_parallel(["E1", "E2"], jobs=2, cache_dir=tmp_path)
        text = report.stats_table().render()
        assert "cache hits 0/2" in text
        assert "E1" in text and "E2" in text
        payload = report.stats_payload()
        assert payload["tasks"] == 2
        assert payload["cache_hits"] == 0
        assert [r["experiment_id"] for r in payload["records"]] == ["E1", "E2"]

    def test_rounds_surfaced_when_table_has_them(self, tmp_path):
        report = run_parallel(["E1"], jobs=1, cache_dir=tmp_path)
        # E1's table has a "rounds" column; the record sums it.
        assert report.records[0].rounds and report.records[0].rounds > 0
        assert report.records[0].checks_total == 3
