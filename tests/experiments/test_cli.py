"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments_and_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out
        assert "poisson" in out


class TestExperiment:
    def test_runs_quick_experiment(self, capsys):
        assert main(["experiment", "E1"]) == 0
        out = capsys.readouterr().out
        assert "Appendix A" in out

    def test_lowercase_id(self, capsys):
        assert main(["experiment", "e12"]) == 0

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            main(["experiment", "E99"])


class TestSolve:
    def test_pipeline_solve(self, capsys):
        assert main([
            "solve", "--workload", "poisson", "--n", "8",
            "--delta", "2", "--seed", "1", "--horizon", "32",
        ]) == 0
        out = capsys.readouterr().out
        assert "total_cost" in out
        assert "[2 | 1 | D_l | 1]" in out

    def test_direct_policy_solve(self, capsys):
        assert main([
            "solve", "--workload", "rate-limited", "--policy", "dlru-edf",
            "--n", "8", "--delta", "2", "--horizon", "32",
        ]) == 0
        out = capsys.readouterr().out
        assert "completion_rate" in out

    def test_baseline_policy_solve(self, capsys):
        assert main([
            "solve", "--workload", "uniform", "--policy", "greedy",
            "--n", "4", "--delta", "2", "--horizon", "16",
        ]) == 0


class TestVersion:
    def test_version_flag_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["--version"])
        assert err.value.code == 0
        from repro import __version__

        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_version_matches_package_metadata(self):
        # pyproject.toml pins the same string; drift would ship a CLI that
        # reports a different version than pip shows.
        import re
        from pathlib import Path

        from repro import __version__

        pyproject = (
            Path(__file__).resolve().parents[2] / "pyproject.toml"
        ).read_text()
        match = re.search(r'^version = "([^"]+)"', pyproject, re.MULTILINE)
        assert match is not None
        assert match.group(1) == __version__


class TestArgumentValidation:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_workload(self):
        with pytest.raises(SystemExit):
            main(["solve", "--workload", "nonsense"])


class TestTraceCommands:
    def test_trace_save_and_solve(self, tmp_path, capsys):
        path = tmp_path / "w.json"
        assert main([
            "trace", "--workload", "uniform", "--delta", "2",
            "--horizon", "16", "--out", str(path),
        ]) == 0
        assert path.exists()
        assert main(["solve", "--trace", str(path), "--n", "4"]) == 0
        out = capsys.readouterr().out
        assert "total_cost" in out

    def test_trace_reload_is_deterministic(self, tmp_path, capsys):
        path = tmp_path / "w.json"
        main(["trace", "--workload", "bursty", "--delta", "3",
              "--horizon", "64", "--seed", "5", "--out", str(path)])
        capsys.readouterr()
        main(["solve", "--trace", str(path), "--n", "8"])
        first = capsys.readouterr().out
        main(["solve", "--trace", str(path), "--n", "8"])
        second = capsys.readouterr().out
        assert first == second

    def test_timeline_flag(self, capsys):
        assert main([
            "solve", "--workload", "uniform", "--horizon", "12",
            "--n", "4", "--policy", "greedy", "--timeline",
        ]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out
        assert "utilization" in out


class TestVerifyCommand:
    def test_verify_clean_trace(self, tmp_path, capsys):
        path = tmp_path / "w.json"
        main(["trace", "--workload", "rate-limited", "--delta", "2",
              "--horizon", "32", "--out", str(path)])
        capsys.readouterr()
        assert main(["verify", "--trace", str(path), "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out
        assert "[FAIL]" not in out
        assert "Theorem 1" in out

    def test_verify_routes_general_traces_to_theorem_3(self, tmp_path, capsys):
        path = tmp_path / "w.json"
        main(["trace", "--workload", "poisson", "--delta", "2",
              "--horizon", "32", "--out", str(path)])
        capsys.readouterr()
        main(["verify", "--trace", str(path), "--n", "8"])
        assert "Theorem 3" in capsys.readouterr().out


class TestAllCommand:
    @staticmethod
    def _isolate(monkeypatch, tmp_path):
        """Point the runner's cache away from the user's real store."""
        from repro.experiments.adversarial import run_e1, run_e4

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setattr(
            "repro.cli.EXPERIMENTS", {"E1": run_e1, "E4": run_e4}
        )

    def test_all_runs_registry_subset(self, capsys, monkeypatch, tmp_path):
        self._isolate(monkeypatch, tmp_path)
        assert main(["all", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "## E1" in out
        assert "## E4" in out
        assert "2/2 experiments passed" in out

    def test_all_parallel_output_matches_serial(self, capsys, monkeypatch, tmp_path):
        self._isolate(monkeypatch, tmp_path)
        assert main(["all", "--scale", "quick", "--jobs", "1", "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(["all", "--scale", "quick", "--jobs", "2", "--no-cache"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_all_stats_reports_cache_hits(self, capsys, monkeypatch, tmp_path):
        self._isolate(monkeypatch, tmp_path)
        assert main(["all", "--scale", "quick"]) == 0
        capsys.readouterr()
        stats_out = tmp_path / "stats" / "runner_stats.json"
        assert main(["all", "--scale", "quick", "--stats",
                     "--stats-out", str(stats_out)]) == 0
        out = capsys.readouterr().out
        assert "cache hits 2/2" in out
        assert "runner stats" in out
        assert str(stats_out) in out

    def test_all_stats_payload_lands_at_stats_out(
        self, capsys, monkeypatch, tmp_path
    ):
        import json

        self._isolate(monkeypatch, tmp_path)
        stats_out = tmp_path / "out" / "stats.json"
        assert main(["all", "--scale", "quick", "--no-cache", "--stats",
                     "--stats-out", str(stats_out)]) == 0
        capsys.readouterr()
        payload = json.loads(stats_out.read_text())
        assert {r["experiment_id"] for r in payload["records"]} == {"E1", "E4"}
        assert payload["telemetry"]["counters"]["repro_rounds_total"][""] > 0

    def test_all_no_cache_leaves_store_empty(self, capsys, monkeypatch, tmp_path):
        self._isolate(monkeypatch, tmp_path)
        assert main(["all", "--scale", "quick", "--no-cache"]) == 0
        assert not list((tmp_path / "cache").glob("*/*.pkl"))


def _run_with_failing_check(scale: str = "quick"):
    """A registry stand-in whose result fails one check."""
    from repro.experiments.adversarial import run_e1

    result = run_e1(scale)
    result.check("deliberately failing check (test stub)", False)
    return result


class TestAllExitCodes:
    """The ``all`` exit-code contract CI leans on: 0 = everything passed,
    1 = a failed experiment check OR a quarantined task."""

    @staticmethod
    def _isolate(monkeypatch, tmp_path):
        from repro.experiments.adversarial import run_e1, run_e4

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setattr(
            "repro.cli.EXPERIMENTS", {"E1": run_e1, "E4": run_e4}
        )

    def test_clean_run_exits_zero(self, capsys, monkeypatch, tmp_path):
        self._isolate(monkeypatch, tmp_path)
        assert main(["all", "--scale", "quick"]) == 0

    def test_failed_check_exits_one(self, capsys, monkeypatch, tmp_path):
        self._isolate(monkeypatch, tmp_path)
        import repro.experiments.registry as registry

        monkeypatch.setitem(registry.EXPERIMENTS, "E1", _run_with_failing_check)
        assert main(["all", "--scale", "quick", "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "1/2 experiments passed" in out
        assert "[FAIL]" in out

    def test_quarantine_exits_one_and_reports(self, capsys, monkeypatch, tmp_path):
        self._isolate(monkeypatch, tmp_path)
        plan = '{"faults": [{"task": "E4", "kind": "raise", "times": -1}]}'
        assert main(["all", "--scale", "quick", "--no-cache",
                     "--retries", "0", "--inject-faults", plan]) == 1
        out = capsys.readouterr().out
        assert "quarantined 1/2 tasks:" in out
        assert "E4: error after 1 attempt(s)" in out
        assert "## E1" in out  # the healthy experiment still completed

    def test_recovered_faults_exit_zero(self, capsys, monkeypatch, tmp_path):
        self._isolate(monkeypatch, tmp_path)
        plan = '{"faults": [{"task": "E4", "kind": "raise", "times": 1}]}'
        assert main(["all", "--scale", "quick", "--no-cache",
                     "--retries", "2", "--inject-faults", plan]) == 0
        out = capsys.readouterr().out
        assert "2/2 experiments passed" in out
        assert "quarantined" not in out

    def test_resume_rejects_no_cache(self, monkeypatch, tmp_path):
        self._isolate(monkeypatch, tmp_path)
        with pytest.raises(SystemExit, match="--resume"):
            main(["all", "--resume", "--no-cache"])

    def test_interrupt_then_resume_round_trip(self, capsys, monkeypatch, tmp_path):
        # Zero-config resume: same identity → same derived manifest under
        # the cache root; the second invocation restores E1 and recomputes
        # only the quarantined E4.
        self._isolate(monkeypatch, tmp_path)
        plan = '{"faults": [{"task": "E4", "kind": "raise", "times": -1}]}'
        assert main(["all", "--scale", "quick", "--resume",
                     "--retries", "0", "--inject-faults", plan]) == 1
        capsys.readouterr()
        assert main(["all", "--scale", "quick", "--resume"]) == 0
        out = capsys.readouterr().out
        assert "2/2 experiments passed" in out

    def test_quarantine_lands_in_stats_payload(self, capsys, monkeypatch, tmp_path):
        import json

        self._isolate(monkeypatch, tmp_path)
        stats_out = tmp_path / "stats.json"
        plan = '{"faults": [{"task": "E1", "kind": "raise", "times": -1}]}'
        assert main(["all", "--scale", "quick", "--no-cache", "--stats",
                     "--retries", "0", "--inject-faults", plan,
                     "--stats-out", str(stats_out)]) == 1
        capsys.readouterr()
        payload = json.loads(stats_out.read_text())
        assert payload["quarantined"] == 1
        assert payload["failed"][0]["label"] == "E1"
        assert payload["failed"][0]["kind"] == "error"
        assert payload["supervisor"]["degraded"] is False


class TestSweepCommand:
    def test_sweep_pivot_table(self, capsys):
        assert main([
            "sweep", "--workload", "poisson", "--deltas", "2,4",
            "--ns", "8", "--seeds", "0,1", "--horizon", "32",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean total_cost" in out
        assert "n=8" in out
        assert "4 cells" in out

    def test_sweep_parallel_matches_serial(self, capsys):
        argv = ["sweep", "--workload", "uniform", "--deltas", "2",
                "--ns", "4,8", "--seeds", "0,1", "--horizon", "32"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial.replace("jobs=1", "") == parallel.replace("jobs=2", "")

    def test_sweep_rejects_bad_value(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--deltas", "2", "--ns", "4", "--seeds", "0",
                  "--horizon", "16", "--value", "nonsense"])

    def test_sweep_rejects_bad_int_list(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--deltas", "two", "--ns", "4", "--seeds", "0"])


class TestMetricsCommand:
    ARGS = ["metrics", "--workload", "uniform", "--n", "4", "--delta", "2",
            "--horizon", "24", "--policy", "greedy"]

    def test_table_output(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "repro_rounds_total" in out
        assert "histogram" in out

    def test_prom_output(self, capsys):
        assert main(self.ARGS + ["--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_rounds_total counter" in out
        assert "# TYPE repro_phase_seconds histogram" in out
        assert 'repro_phase_seconds_bucket{phase="drop",le="+Inf"}' in out

    def test_writes_trace_alongside(self, tmp_path, capsys):
        import json

        trace = tmp_path / "run.jsonl"
        assert main(self.ARGS + ["--telemetry", str(trace)]) == 0
        lines = [json.loads(l) for l in trace.read_text().splitlines()]
        assert lines[0]["kind"] == "header"
        assert lines[-1]["kind"] == "summary"

    def test_renders_saved_runner_stats(self, tmp_path, capsys):
        import json

        from repro.experiments.runner import run_parallel

        report = run_parallel(["E1"], jobs=1, collect_telemetry=True,
                              cache_dir=tmp_path / "cache", use_cache=False)
        path = report.write_stats(tmp_path / "stats.json")
        assert main(["metrics", "--input", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro_runner_tasks_total" in out

    def test_renders_raw_snapshot(self, tmp_path, capsys):
        import json

        from repro.telemetry import MetricsRegistry

        reg = MetricsRegistry()
        reg.count("repro_drops_total", 5)
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(reg.snapshot()))
        assert main(["metrics", "--input", str(path), "--format", "prom"]) == 0
        assert "repro_drops_total 5" in capsys.readouterr().out

    def test_rejects_non_snapshot_input(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"not": "a snapshot"}')
        with pytest.raises(SystemExit):
            main(["metrics", "--input", str(path)])


class TestTelemetryFlags:
    def test_solve_telemetry_writes_trace_without_changing_solution(
        self, tmp_path, capsys
    ):
        argv = ["solve", "--workload", "uniform", "--policy", "dlru-edf",
                "--n", "4", "--delta", "2", "--horizon", "24"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        trace = tmp_path / "run.jsonl"
        assert main(argv + ["--telemetry", str(trace)]) == 0
        instrumented = capsys.readouterr().out
        assert trace.exists()
        assert instrumented.replace(
            f"wrote telemetry trace to {trace}\n", ""
        ) == plain

    def test_trace_telemetry_runs_recommended_solver(self, tmp_path, capsys):
        import json

        out_trace = tmp_path / "w.json"
        run_trace = tmp_path / "run.jsonl"
        assert main(["trace", "--workload", "rate-limited", "--delta", "2",
                     "--horizon", "32", "--out", str(out_trace),
                     "--telemetry", str(run_trace)]) == 0
        out = capsys.readouterr().out
        assert "total_cost=" in out
        records = [json.loads(l) for l in run_trace.read_text().splitlines()]
        assert records[0]["schema"] == "repro-trace-v1"
        assert any(r["kind"] == "round" for r in records)


class TestEveryPolicyChoice:
    import pytest as _pytest

    @_pytest.mark.parametrize("policy", [
        "dlru", "edf", "dlru-edf", "static", "classic-lru", "greedy",
    ])
    def test_solve_with_each_policy(self, policy, capsys):
        assert main([
            "solve", "--workload", "rate-limited", "--policy", policy,
            "--n", "8", "--delta", "2", "--horizon", "32",
        ]) == 0
        out = capsys.readouterr().out
        assert "total_cost" in out
