"""Unit tests for the experiment infrastructure (common + writer)."""

import pytest

from repro.analysis.reporting import Table
from repro.experiments.common import Check, ExperimentResult, pick


def make_result():
    table = Table(["x"], title="demo")
    table.add_row(1)
    return ExperimentResult(
        experiment_id="EX",
        title="Demo experiment",
        claim="something holds",
        table=table,
    )


class TestExperimentResult:
    def test_check_accumulates(self):
        result = make_result()
        result.check("first", True)
        result.check("second", False)
        assert [c.passed for c in result.checks] == [True, False]
        assert not result.all_passed

    def test_all_passed_when_empty(self):
        assert make_result().all_passed

    def test_render_contains_everything(self):
        result = make_result()
        result.check("good", True)
        result.check("bad", False)
        text = result.render()
        assert "## EX: Demo experiment" in text
        assert "Claim: something holds" in text
        assert "[PASS] good" in text
        assert "[FAIL] bad" in text

    def test_check_coerces_truthiness(self):
        result = make_result()
        result.check("coerced", 1)
        assert result.checks[0].passed is True


class TestPick:
    def test_selects_scale(self):
        params = {"quick": {"n": 1}, "full": {"n": 2}}
        assert pick("full", params) == {"n": 2}

    def test_unknown_scale_lists_choices(self):
        with pytest.raises(ValueError, match="quick"):
            pick("nope", {"quick": {}})


class TestWriter:
    def test_writer_emits_markdown(self, tmp_path, monkeypatch):
        import repro.experiments.writer as writer
        from repro.experiments.adversarial import run_e1

        monkeypatch.setattr(
            "repro.experiments.writer.EXPERIMENTS", {"E1": run_e1}
        )
        out = tmp_path / "EXP.md"
        writer.write_experiments_md(str(out), scale="quick")
        text = out.read_text()
        assert text.startswith("# EXPERIMENTS")
        assert "## E1" in text
        assert "Claim-by-claim summary" in text
