"""Integration tests: the whole experiment suite at quick scale.

Each experiment's internal checks encode the paper's claim for that
experiment (DESIGN.md §4); a failed check means the reproduction no longer
exhibits the paper's behaviour.
"""

import pytest

from repro.experiments import EXPERIMENTS, get_experiment, run_experiment


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_checks_pass(experiment_id):
    result = run_experiment(experiment_id, "quick")
    failed = [c.description for c in result.checks if not c.passed]
    assert not failed, f"{experiment_id} failed: {failed}\n{result.table.render()}"


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_renders(experiment_id):
    result = run_experiment(experiment_id, "quick")
    text = result.render()
    assert result.experiment_id in text
    assert "|" in text  # a table is present


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        get_experiment("E99")


def test_lookup_case_insensitive():
    assert get_experiment("e1") is EXPERIMENTS["E1"]


def test_unknown_scale_rejected():
    with pytest.raises(ValueError):
        run_experiment("E1", "galactic")


def test_registry_covers_design_document():
    expected = {f"E{i}" for i in range(1, 15)} | {"A1", "A2", "A3", "A4", "A5"}
    assert set(EXPERIMENTS) == expected
