"""Deterministic fault injection: plan parsing, decisions, downgrade rules."""

import json

import pytest

from repro import faults
from repro.faults import (
    CORRUPTED,
    FAULT_PLAN_ENV,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    active_plan,
    install_plan,
    maybe_inject,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with no installed plan."""
    install_plan(None)
    yield
    install_plan(None)


class TestPlanParsing:
    def test_object_document_with_seed(self):
        plan = FaultPlan.from_json(
            '{"seed": 9, "faults": [{"task": "E1", "kind": "raise"}]}'
        )
        assert plan.seed == 9
        assert plan.specs == (FaultSpec(task="E1", kind="raise"),)

    def test_bare_list_document(self):
        plan = FaultPlan.from_json('[{"task": "E1", "kind": "kill", "times": 2}]')
        assert plan.seed == 0
        assert plan.specs[0].times == 2

    def test_p_alias_for_probability(self):
        plan = FaultPlan.from_json('[{"task": "*", "kind": "corrupt", "p": 0.25}]')
        assert plan.specs[0].probability == 0.25

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_json('[{"task": "E1", "kind": "explode"}]')

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec fields"):
            FaultPlan.from_json('[{"task": "E1", "kind": "raise", "when": "now"}]')

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(task="E1", kind="raise", probability=1.5)

    def test_from_arg_inline_json(self):
        plan = FaultPlan.from_arg('{"faults": [{"task": "A*", "kind": "hang"}]}')
        assert plan.specs[0].task == "A*"

    def test_from_arg_file_path(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"seed": 3, "faults": [{"task": "E2", "kind": "corrupt"}]}')
        plan = FaultPlan.from_arg(str(path))
        assert plan.seed == 3 and plan.specs[0].kind == "corrupt"

    def test_from_arg_passthrough(self):
        plan = FaultPlan(specs=(FaultSpec(task="x", kind="raise"),))
        assert FaultPlan.from_arg(plan) is plan

    def test_json_round_trip_is_canonical(self):
        plan = FaultPlan.from_json(
            '{"seed": 5, "faults": ['
            '{"task": "E*", "kind": "hang", "hang_seconds": 7.5, "times": -1},'
            '{"task": "A2", "kind": "corrupt", "p": 0.5}]}'
        )
        text = plan.to_json()
        assert FaultPlan.from_json(text) == plan
        assert FaultPlan.from_json(text).to_json() == text
        json.loads(text)  # strictly valid JSON


class TestDecide:
    def test_times_bounds_attempts(self):
        plan = FaultPlan.from_json('[{"task": "E1", "kind": "raise", "times": 2}]')
        assert plan.decide("E1", 0) is not None
        assert plan.decide("E1", 1) is not None
        assert plan.decide("E1", 2) is None

    def test_times_minus_one_fires_forever(self):
        plan = FaultPlan.from_json('[{"task": "E1", "kind": "raise", "times": -1}]')
        assert plan.decide("E1", 40) is not None

    def test_glob_patterns_match_labels(self):
        plan = FaultPlan.from_json('[{"task": "A*", "kind": "raise"}]')
        assert plan.decide("A2", 0) is not None
        assert plan.decide("E2", 0) is None

    def test_first_matching_spec_wins(self):
        plan = FaultPlan.from_json(
            '[{"task": "E1", "kind": "corrupt"}, {"task": "E*", "kind": "kill"}]'
        )
        assert plan.decide("E1", 0).kind == "corrupt"
        assert plan.decide("E2", 0).kind == "kill"

    def test_probabilistic_coin_is_deterministic(self):
        plan = FaultPlan.from_json(
            '{"seed": 11, "faults": [{"task": "*", "kind": "raise", "p": 0.5,'
            ' "times": -1}]}'
        )
        first = [plan.decide(f"t{i}", 0) is not None for i in range(64)]
        second = [plan.decide(f"t{i}", 0) is not None for i in range(64)]
        assert first == second
        assert any(first) and not all(first)  # the coin actually thins

    def test_probability_zero_never_fires(self):
        plan = FaultPlan.from_json('[{"task": "*", "kind": "raise", "p": 0.0}]')
        assert all(plan.decide(f"t{i}", 0) is None for i in range(32))

    def test_coin_varies_with_plan_seed(self):
        doc = '[{"task": "*", "kind": "raise", "p": 0.5, "times": -1}]'
        a = FaultPlan.from_mapping({"seed": 1, "faults": json.loads(doc)})
        b = FaultPlan.from_mapping({"seed": 2, "faults": json.loads(doc)})
        draws_a = [a.decide(f"t{i}", 0) is not None for i in range(64)]
        draws_b = [b.decide(f"t{i}", 0) is not None for i in range(64)]
        assert draws_a != draws_b


class TestInjectionPoint:
    def test_no_plan_is_a_noop(self):
        assert maybe_inject("anything", 0) is None

    def test_raise_kind_raises(self):
        install_plan(FaultPlan.from_json('[{"task": "E1", "kind": "raise"}]'))
        with pytest.raises(FaultInjected, match="injected raise"):
            maybe_inject("E1", 0)
        assert maybe_inject("E1", 1) is None  # times=1: retry is clean

    def test_corrupt_kind_returns_marker(self):
        install_plan(FaultPlan.from_json('[{"task": "E1", "kind": "corrupt"}]'))
        assert maybe_inject("E1", 0) == "corrupt"
        assert CORRUPTED  # the sentinel the body should return instead

    def test_kill_downgrades_to_raise_outside_workers(self):
        # The test process is not a marked worker; a real SIGKILL here
        # would take pytest down with it.
        install_plan(FaultPlan.from_json('[{"task": "E1", "kind": "kill"}]'))
        with pytest.raises(FaultInjected, match="downgraded to raise"):
            maybe_inject("E1", 0)

    def test_hang_downgrades_to_raise_outside_workers(self):
        install_plan(
            FaultPlan.from_json(
                '[{"task": "E1", "kind": "hang", "hang_seconds": 3600}]'
            )
        )
        with pytest.raises(FaultInjected, match="downgraded to raise"):
            maybe_inject("E1", 0)  # returns promptly — no hour-long sleep

    def test_install_plan_returns_previous(self):
        first = FaultPlan.from_json('[{"task": "a", "kind": "raise"}]')
        assert install_plan(first) is None
        assert install_plan(None) is first


class TestEnvActivation:
    def test_env_plan_activates(self, monkeypatch):
        monkeypatch.setenv(
            FAULT_PLAN_ENV, '[{"task": "E9", "kind": "raise"}]'
        )
        plan = active_plan()
        assert plan is not None and plan.specs[0].task == "E9"
        with pytest.raises(FaultInjected):
            maybe_inject("E9", 0)

    def test_env_plan_from_file(self, monkeypatch, tmp_path):
        path = tmp_path / "chaos.json"
        path.write_text('[{"task": "E8", "kind": "corrupt"}]')
        monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
        assert maybe_inject("E8", 0) == "corrupt"

    def test_env_cache_tracks_raw_string(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, '[{"task": "a", "kind": "raise"}]')
        assert active_plan().specs[0].task == "a"
        monkeypatch.setenv(FAULT_PLAN_ENV, '[{"task": "b", "kind": "raise"}]')
        assert active_plan().specs[0].task == "b"
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert active_plan() is None

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, '[{"task": "env", "kind": "raise"}]')
        installed = FaultPlan.from_json('[{"task": "inst", "kind": "raise"}]')
        install_plan(installed)
        assert active_plan() is installed
