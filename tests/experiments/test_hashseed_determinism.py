"""Cross-process determinism and perf-harness smoke tests.

The determinism contract: simulation results (ledger, schedule, events,
uids) depend only on the instance and the policy — never on the process's
``PYTHONHASHSEED``.  Integer colors hash to themselves and cannot catch a
leak, so these tests run string-colored workloads in fresh subprocesses
under several hash seeds and require one flat digest across every seed and
both engines.
"""

import json

import pytest

from repro.experiments import perf


class TestHashseedDeterminism:
    def test_in_process_digests_agree_across_engines(self):
        digests = perf.hashseed_digests()
        assert digests["incremental"] == digests["reference"]

    def test_subprocess_digests_identical_across_seeds(self):
        # One subprocess per PYTHONHASHSEED in {1, 7, 1234}; a raw-set
        # iteration anywhere on the hot path diverges here.
        report = perf.check_hashseed_determinism()
        assert report["seeds"] == list(perf.HASHSEED_SEEDS)
        assert len(report["seeds"]) >= 3
        assert report["identical"], report["digests"]


class TestPerfHarness:
    @pytest.fixture()
    def small_case(self, monkeypatch):
        case = perf.PerfCase(
            name="smoke",
            workload="rate-limited",
            params={"num_colors": 6, "horizon": 64, "delta": 4, "seed": 0},
            n=8,
            largest=True,
        )
        monkeypatch.setattr(perf, "CASES", (case,))
        return case

    def test_run_perf_digests_match(self, small_case):
        payload = perf.run_perf(scale="quick", repeats=1, check_hashseed=False)
        assert payload["schema"] == perf.SCHEMA
        assert payload["all_digests_match"]
        [row] = payload["cases"]
        assert row["name"] == "smoke"
        assert row["reference_seconds"] > 0
        assert row["incremental_seconds"] > 0
        assert payload["largest_case"]["name"] == "smoke"
        assert payload["largest_case"]["gated"]

    def test_main_writes_report(self, small_case, tmp_path, capsys):
        out = tmp_path / "BENCH_perf.json"
        rc = perf.main(
            ["--scale", "quick", "--repeats", "1", "--no-hashseed",
             "--out", str(out)]
        )
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["all_digests_match"]
        assert "hashseed" not in payload
        rendered = capsys.readouterr().out
        assert "smoke" in rendered
