"""Unit tests for the seed-replication helpers."""

import pytest

from repro.experiments.montecarlo import Replication, replicate, replicate_seeded
from repro.experiments.seeds import replication_seeds


class TestReplication:
    def test_mean_and_stdev(self):
        rep = Replication((1.0, 2.0, 3.0))
        assert rep.mean == pytest.approx(2.0)
        assert rep.stdev == pytest.approx(1.0)

    def test_single_value_has_zero_spread(self):
        rep = Replication((5.0,))
        assert rep.stdev == 0.0
        assert rep.ci_halfwidth() == 0.0

    def test_ci_shrinks_with_n(self):
        narrow = Replication(tuple([1.0, 2.0] * 50))
        wide = Replication((1.0, 2.0))
        assert narrow.ci_halfwidth() < wide.ci_halfwidth()

    def test_contains_uses_interval(self):
        rep = Replication((1.0, 2.0, 3.0, 2.0, 2.0))
        assert 2.0 in rep
        assert 100.0 not in rep

    def test_summary_format(self):
        text = Replication((1.0, 2.0)).summary()
        assert "±" in text and "n=2" in text


class TestReplicate:
    def test_calls_metric_per_seed(self):
        rep = replicate(lambda seed: float(seed * seed), seeds=range(4))
        assert rep.values == (0.0, 1.0, 4.0, 9.0)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda s: 0.0, seeds=[])

    def test_real_metric_end_to_end(self):
        from repro.reductions.pipeline import solve_rate_limited
        from repro.workloads.generators import rate_limited_workload

        def cost(seed: int) -> float:
            inst = rate_limited_workload(
                num_colors=4, horizon=32, delta=2, seed=seed
            )
            return solve_rate_limited(inst, n=8, record_events=False).total_cost

        rep = replicate(cost, seeds=range(5))
        assert rep.n == 5
        assert rep.mean > 0


class TestReplicateSeeded:
    def test_uses_derived_seed_stream(self):
        seen: list[int] = []

        def metric(seed: int) -> float:
            seen.append(seed)
            return float(seed % 97)

        rep = replicate_seeded(metric, "study", 6, root_seed=11)
        assert rep.n == 6
        assert tuple(seen) == replication_seeds(11, "study", 6)

    def test_label_separates_studies(self):
        metric = float
        a = replicate_seeded(metric, "alpha", 4, root_seed=0)
        b = replicate_seeded(metric, "beta", 4, root_seed=0)
        assert a.values != b.values

    def test_root_seed_reproducibility(self):
        metric = float
        assert (replicate_seeded(metric, "s", 4, root_seed=5).values
                == replicate_seeded(metric, "s", 4, root_seed=5).values)
        assert (replicate_seeded(metric, "s", 4, root_seed=5).values
                != replicate_seeded(metric, "s", 4, root_seed=6).values)
