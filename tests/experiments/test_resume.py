"""Checkpoint/resume: the run manifest and the restore fast paths.

The contract under test: an interrupted run resumed against the same
manifest recomputes *only* the missing cells (restored cells show up as
``attempts=0`` cache hits), and the final payload is identical to what an
uninterrupted run would have produced.
"""

import json

import pytest

from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.manifest import MANIFEST_SCHEMA, RunManifest, run_key
from repro.experiments.runner import QuarantineError, replicate_parallel, run_parallel
from repro.experiments.seeds import replication_seeds
from repro.experiments.sweeps import grid, point_label, run_sweep
from repro.reductions.pipeline import solve_rate_limited
from repro.workloads.generators import rate_limited_workload

IDENTITY = {"kind": "test", "ids": ["E1", "E2"], "version": "x"}


class TestRunManifest:
    def test_fresh_start_then_journal_round_trip(self, tmp_path):
        manifest = RunManifest(tmp_path / "run.jsonl", IDENTITY)
        assert manifest.start() == {}
        manifest.record("E1", "key1", "fp1")
        manifest.record("E2", "key2")
        assert manifest.load() == {"E1": "key1", "E2": "key2"}

    def test_resume_keeps_and_appends(self, tmp_path):
        manifest = RunManifest(tmp_path / "run.jsonl", IDENTITY)
        manifest.start()
        manifest.record("E1", "key1")
        again = RunManifest(tmp_path / "run.jsonl", IDENTITY)
        assert again.start(resume=True) == {"E1": "key1"}
        again.record("E2", "key2")
        assert again.load() == {"E1": "key1", "E2": "key2"}

    def test_start_without_resume_truncates(self, tmp_path):
        manifest = RunManifest(tmp_path / "run.jsonl", IDENTITY)
        manifest.start()
        manifest.record("E1", "key1")
        manifest.start(resume=False)
        assert manifest.load() == {}

    def test_identity_mismatch_trusts_nothing(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunManifest(path, IDENTITY).start()
        RunManifest(path, IDENTITY).record("E1", "key1")
        other = RunManifest(path, {**IDENTITY, "ids": ["E3"]})
        assert other.load() == {}
        assert other.start(resume=True) == {}  # and rewrites the header

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        manifest = RunManifest(path, IDENTITY)
        manifest.start()
        manifest.record("E1", "key1")
        with open(path, "a") as fh:
            fh.write('{"kind": "cell", "label": "E2", "cache_')  # SIGKILL artifact
        assert manifest.load() == {"E1": "key1"}

    def test_junk_file_is_not_a_journal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("not json at all\n")
        assert RunManifest(path, IDENTITY).load() == {}

    def test_run_key_is_canonical(self):
        assert run_key({"b": 1, "a": 2}) == run_key({"a": 2, "b": 1})
        assert run_key({"a": 1}) != run_key({"a": 2})

    def test_default_location_under_cache_root(self, tmp_path):
        manifest = RunManifest.for_identity(IDENTITY, cache_root=tmp_path)
        assert manifest.path.parent == tmp_path / "manifests"
        assert manifest.path.suffix == ".jsonl"

    def test_header_is_first_line(self, tmp_path):
        manifest = RunManifest(tmp_path / "run.jsonl", IDENTITY)
        manifest.start()
        header = json.loads((tmp_path / "run.jsonl").read_text().splitlines()[0])
        assert header["schema"] == MANIFEST_SCHEMA
        assert header["run_key"] == manifest.key


class TestRunParallelResume:
    IDS = ["E1", "E4"]
    PLAN = '{"faults": [{"task": "E4", "kind": "raise", "times": -1}]}'

    def test_resume_recomputes_only_missing_cells(self, tmp_path):
        kwargs = {
            "scale": "quick",
            "jobs": 1,
            "cache_dir": tmp_path / "cache",
            "manifest_path": tmp_path / "run.jsonl",
        }
        interrupted = run_parallel(
            self.IDS, retries=0, fault_plan=self.PLAN, **kwargs
        )
        assert list(interrupted.results) == ["E1"]
        assert [f.label for f in interrupted.failed] == ["E4"]

        resumed = run_parallel(self.IDS, resume=True, **kwargs)
        assert list(resumed.results) == self.IDS and not resumed.failed
        by_id = {r.experiment_id: r for r in resumed.records}
        # E1 was journaled: restored in the parent, zero attempts, a hit.
        assert by_id["E1"].attempts == 0 and by_id["E1"].cache_hit
        assert by_id["E1"].wall_time == 0.0
        # E4 was the missing cell: actually executed this time.
        assert by_id["E4"].attempts >= 1
        assert resumed.cache_hits == 1

        reference = run_parallel(self.IDS, jobs=1, use_cache=False,
                                 cache_dir=tmp_path / "cold")
        for eid in self.IDS:
            assert (
                resumed.results[eid].fingerprint()
                == reference.results[eid].fingerprint()
            ), eid

    def test_resume_requires_cache(self, tmp_path):
        with pytest.raises(ValueError, match="cache"):
            run_parallel(["E1"], use_cache=False, resume=True,
                         cache_dir=tmp_path)

    def test_manifest_without_resume_still_journals(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run_parallel(["E1"], jobs=1, cache_dir=tmp_path / "cache",
                     manifest_path=path)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["schema"] == MANIFEST_SCHEMA
        assert [l["label"] for l in lines[1:]] == ["E1"]
        assert lines[1]["fingerprint"]  # journaled with its digest


def _metric(seed: int) -> float:
    """Module-level Monte-Carlo metric: cheap and a pure function of seed."""
    return float((seed % 1000) / 7.0)


class TestReplicateParallelResume:
    def test_quarantine_raises_but_journals_survivors(self, tmp_path):
        seeds = replication_seeds(3, "m", 5)
        victim = f"m#{seeds[2]}"
        plan = json.dumps(
            {"faults": [{"task": victim, "kind": "raise", "times": -1}]}
        )
        kwargs = {
            "root_seed": 3,
            "jobs": 1,
            "cache_dir": tmp_path / "cache",
            "use_cache": True,
            "manifest_path": tmp_path / "mc.jsonl",
        }
        with pytest.raises(QuarantineError) as err:
            replicate_parallel(_metric, "m", 5, retries=0, fault_plan=plan,
                               **kwargs)
        assert [f.label for f in err.value.failures] == [victim]

        replication, records = replicate_parallel(_metric, "m", 5,
                                                  resume=True, **kwargs)
        by_seed = {r.seed: r for r in records}
        for i, seed in enumerate(seeds):
            if i == 2:
                assert by_seed[seed].attempts >= 1  # the recomputed cell
            else:
                assert by_seed[seed].attempts == 0 and by_seed[seed].cache_hit

        clean, _ = replicate_parallel(_metric, "m", 5, root_seed=3, jobs=1)
        assert replication.values == clean.values


def _build(point):
    return rate_limited_workload(
        num_colors=3, horizon=16, delta=2, seed=point["seed"]
    )


def _run(instance, point):
    res = solve_rate_limited(instance, n=point["n"], record_events=False)
    return {"cost": res.total_cost}


class TestRunSweepResume:
    POINTS = grid(seed=[0, 1], n=[8, 16])

    def test_interrupt_then_resume_completes_the_grid(self, tmp_path):
        victim = point_label(self.POINTS[1])
        plan = json.dumps(
            {"faults": [{"task": victim, "kind": "raise", "times": -1}]}
        )
        kwargs = {
            "jobs": 1,
            "cache_dir": tmp_path / "cache",
            "sweep_id": "study",
            "manifest_path": tmp_path / "sweep.jsonl",
        }
        interrupted = run_sweep(self.POINTS, _build, _run, retries=0,
                                fault_plan=plan, **kwargs)
        assert len(interrupted.rows) == 3
        assert [f.label for f in interrupted.failed] == [victim]

        resumed = run_sweep(self.POINTS, _build, _run, resume=True, **kwargs)
        assert not resumed.failed and len(resumed.rows) == 4

        reference = run_sweep(self.POINTS, _build, _run)
        assert resumed.rows == reference.rows

    def test_restored_cells_come_from_the_cache_not_recompute(self, tmp_path):
        victim = point_label(self.POINTS[0])
        plan = json.dumps(
            {"faults": [{"task": victim, "kind": "raise", "times": -1}]}
        )
        kwargs = {
            "jobs": 1,
            "cache_dir": tmp_path / "cache",
            "sweep_id": "study",
            "manifest_path": tmp_path / "sweep.jsonl",
        }
        run_sweep(self.POINTS, _build, _run, retries=0, fault_plan=plan,
                  **kwargs)
        # Poison the cache entry of a *completed* cell: if resume recomputed
        # it, the marker would vanish; if it restores, the marker survives.
        cache = ResultCache(tmp_path / "cache")
        marked_label = point_label(self.POINTS[2])
        key = cache_key("study", marked_label, kind="sweep")
        assert cache.get(key) is not None
        cache.put(key, {"marker": True})

        resumed = run_sweep(self.POINTS, _build, _run, resume=True, **kwargs)
        assert {"marker": True} in resumed.rows

    def test_resume_requires_identification(self):
        with pytest.raises(ValueError, match="sweep_id"):
            run_sweep(self.POINTS, _build, _run, resume=True)
