"""Regression tests: no shared mutable state between interleaved experiments.

The parallelism audit (DESIGN.md §"Parallel runner") found every workload
generator already builds a private ``np.random.default_rng(seed)`` per call
— no module-level RNG anywhere in ``src/`` — and one genuine piece of
process-global mutable state: the ``Job.uid`` counter in
``repro.core.job``.  These tests pin both facts down so a future
module-level RNG or uid-order dependence reintroduced anywhere in the
experiment path fails CI immediately.
"""

import random
from concurrent.futures import ThreadPoolExecutor

from repro.core.job import Job
from repro.experiments.registry import run_experiment
from repro.workloads.generators import (
    bursty_workload,
    poisson_workload,
    rate_limited_workload,
)


def _stream(instance):
    """The generator's observable draw sequence (uids excluded on purpose)."""
    return [(j.color, j.arrival, j.delay_bound) for j in instance.sequence.jobs()]


class TestGeneratorIsolation:
    def test_interleaved_generators_do_not_perturb_each_other(self):
        # Reference streams, generated back-to-back.
        a_ref = _stream(poisson_workload(delta=3, seed=0, horizon=64))
        b_ref = _stream(bursty_workload(delta=3, seed=1, horizon=64))
        # Now interleave the two studies — and pollute the global ``random``
        # module between calls, as a badly-behaved neighbour task would.
        random.seed(999)
        a_again = _stream(poisson_workload(delta=3, seed=0, horizon=64))
        random.random()
        b_again = _stream(bursty_workload(delta=3, seed=1, horizon=64))
        random.seed(0)
        assert a_again == a_ref
        assert b_again == b_ref

    def test_generator_draws_survive_foreign_generator_calls(self):
        ref = _stream(rate_limited_workload(delta=2, seed=7, horizon=64))
        for seed in range(5):  # burn a different generator's RNG state
            bursty_workload(delta=2, seed=seed, horizon=32)
        assert _stream(rate_limited_workload(delta=2, seed=7, horizon=64)) == ref


class TestExperimentIsolation:
    def test_interleaved_experiments_reproduce_solo_runs(self):
        solo_e1 = run_experiment("E1", "quick").fingerprint()
        solo_e2 = run_experiment("E2", "quick").fingerprint()
        # Opposite order, back to back: any cross-experiment state leak
        # (module RNG, caches, counters feeding results) breaks equality.
        inter_e2 = run_experiment("E2", "quick").fingerprint()
        inter_e1 = run_experiment("E1", "quick").fingerprint()
        assert inter_e1 == solo_e1
        assert inter_e2 == solo_e2

    def test_uid_counter_offset_cannot_leak_into_results(self):
        before = run_experiment("E14", "quick").fingerprint()
        # Advance the process-global Job.uid counter by a large, odd amount
        # — as another experiment running first in the same worker would.
        for _ in range(1013):
            Job(color=0, arrival=0, delay_bound=1)
        after = run_experiment("E14", "quick").fingerprint()
        assert after == before


class TestUidCounter:
    def test_concurrent_minting_never_duplicates(self):
        # ``next(itertools.count)`` is atomic under CPython; the old
        # ``global n; n += 1`` read-modify-write was not.
        def mint(_):
            return [Job(color=0, arrival=0, delay_bound=1).uid for _ in range(200)]

        with ThreadPoolExecutor(max_workers=8) as pool:
            batches = list(pool.map(mint, range(8)))
        uids = [uid for batch in batches for uid in batch]
        assert len(set(uids)) == len(uids)

    def test_relative_order_within_an_instance_is_stable(self):
        # The EDF tie-break consults relative uid order; building the same
        # instance twice must rank its jobs identically.
        first = rate_limited_workload(delta=2, seed=3, horizon=32)
        second = rate_limited_workload(delta=2, seed=3, horizon=32)
        first_rank = sorted(range(len(_stream(first))),
                            key=lambda i: list(first.sequence.jobs())[i].sort_key())
        second_rank = sorted(range(len(_stream(second))),
                             key=lambda i: list(second.sequence.jobs())[i].sort_key())
        assert first_rank == second_rank
