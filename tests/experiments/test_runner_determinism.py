"""Determinism of the parallel runner.

The engine's core guarantee: the number of workers and the order in which
tasks complete are *not inputs to the result*.  ``run_parallel(jobs=1)`` is
the reference execution; every parallel configuration must reproduce its
payloads bit-for-bit, and Monte-Carlo fan-out must be a pure function of
the root seed.
"""

import pytest

from repro.experiments.registry import DETERMINISTIC_EXPERIMENTS, TIMING_EXPERIMENTS
from repro.experiments.runner import replicate_parallel, run_parallel
from repro.reductions.pipeline import solve_rate_limited
from repro.workloads.generators import rate_limited_workload

# A fast sample spanning adversarial (E1/E2/E4), figure-shape (E14), and
# ablation (A2) experiments — every one in DETERMINISTIC_EXPERIMENTS.
SAMPLE = ["E1", "E2", "E4", "E14", "A2"]


def _pipeline_cost(seed: int) -> float:
    """Module-level metric so the process pool can pickle it."""
    instance = rate_limited_workload(num_colors=4, horizon=32, delta=2, seed=seed)
    return float(solve_rate_limited(instance, n=8, record_events=False).total_cost)


@pytest.fixture
def no_cache_kwargs(tmp_path):
    """Runner kwargs that keep every run cold and off the user's cache."""
    return {"cache_dir": tmp_path / "cache", "use_cache": False}


class TestExperimentFanout:
    def test_sample_is_deterministic_only(self):
        assert set(SAMPLE) <= set(DETERMINISTIC_EXPERIMENTS)
        assert not set(SAMPLE) & TIMING_EXPERIMENTS

    def test_serial_and_parallel_payloads_identical(self, no_cache_kwargs):
        serial = run_parallel(SAMPLE, jobs=1, **no_cache_kwargs)
        parallel = run_parallel(SAMPLE, jobs=4, **no_cache_kwargs)
        assert list(serial.results) == list(parallel.results) == SAMPLE
        for eid in SAMPLE:
            assert serial.results[eid] == parallel.results[eid], eid
            assert (
                serial.results[eid].fingerprint()
                == parallel.results[eid].fingerprint()
            ), eid

    def test_parallel_render_is_byte_identical(self, no_cache_kwargs):
        serial = run_parallel(SAMPLE, jobs=1, **no_cache_kwargs)
        parallel = run_parallel(SAMPLE, jobs=3, **no_cache_kwargs)
        serial_text = "\n".join(r.render() for r in serial.results.values())
        parallel_text = "\n".join(r.render() for r in parallel.results.values())
        assert serial_text == parallel_text

    def test_records_follow_request_order(self, no_cache_kwargs):
        ids = ["E4", "E1", "E14"]  # deliberately not registry order
        report = run_parallel(ids, jobs=3, **no_cache_kwargs)
        assert [r.experiment_id for r in report.records] == ids
        assert list(report.results) == ids

    def test_repeated_runs_identical(self, no_cache_kwargs):
        first = run_parallel(["E1", "E2"], jobs=2, **no_cache_kwargs)
        second = run_parallel(["E1", "E2"], jobs=2, **no_cache_kwargs)
        for eid in ("E1", "E2"):
            assert first.results[eid] == second.results[eid]

    def test_unknown_experiment_rejected(self, no_cache_kwargs):
        with pytest.raises(KeyError):
            run_parallel(["E99"], **no_cache_kwargs)


class TestReplicationFanout:
    def test_worker_count_does_not_change_values(self):
        serial, _ = replicate_parallel(_pipeline_cost, "det-suite", 6,
                                       root_seed=7, jobs=1)
        fanned, _ = replicate_parallel(_pipeline_cost, "det-suite", 6,
                                       root_seed=7, jobs=4)
        assert serial.values == fanned.values

    def test_same_root_seed_bit_identical(self):
        a, _ = replicate_parallel(_pipeline_cost, "det-suite", 5, root_seed=3)
        b, _ = replicate_parallel(_pipeline_cost, "det-suite", 5, root_seed=3)
        assert a.values == b.values

    def test_different_root_seeds_differ(self):
        a, _ = replicate_parallel(_pipeline_cost, "det-suite", 5, root_seed=3)
        b, _ = replicate_parallel(_pipeline_cost, "det-suite", 5, root_seed=4)
        assert a.values != b.values

    def test_different_labels_draw_different_seeds(self):
        a, _ = replicate_parallel(_pipeline_cost, "study-a", 5, root_seed=3)
        b, _ = replicate_parallel(_pipeline_cost, "study-b", 5, root_seed=3)
        assert a.values != b.values

    def test_records_carry_derived_seeds(self):
        rep, records = replicate_parallel(_pipeline_cost, "det-suite", 4,
                                          root_seed=0, jobs=2)
        assert rep.n == 4
        seeds = [r.seed for r in records]
        assert len(set(seeds)) == 4
        assert all(not r.cache_hit for r in records)

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            replicate_parallel(_pipeline_cost, "det-suite", 0)
