"""Telemetry aggregation across the parallel runner's process boundary.

Per-worker recorders snapshot into plain dicts, ship home by value, and
merge with commutative operations — so the aggregated counters are a pure
function of the task list, not of worker count or completion order.
"""

import pytest

from repro.experiments.runner import run_parallel

SAMPLE = ["E1", "E4", "E14"]


@pytest.fixture
def no_cache_kwargs(tmp_path):
    return {"cache_dir": tmp_path / "cache", "use_cache": False}


class TestRunnerTelemetry:
    def test_report_has_no_telemetry_by_default(self, no_cache_kwargs):
        report = run_parallel(SAMPLE, jobs=1, **no_cache_kwargs)
        assert report.telemetry == {}
        assert "telemetry" not in report.stats_payload()

    def test_collects_merged_snapshot(self, no_cache_kwargs):
        report = run_parallel(SAMPLE, jobs=1, collect_telemetry=True,
                              **no_cache_kwargs)
        counters = report.telemetry["counters"]
        assert counters["repro_runner_tasks_total"]['cache="miss"'] == len(SAMPLE)
        assert counters["repro_rounds_total"][""] > 0
        # per-task wall time lands in the aggregate histogram
        task_cells = report.telemetry["histograms"]["repro_task_seconds"]
        assert sum(c["count"] for c in task_cells.values()) == len(SAMPLE)

    def test_worker_count_does_not_change_counters(self, no_cache_kwargs):
        serial = run_parallel(SAMPLE, jobs=1, collect_telemetry=True,
                              **no_cache_kwargs)
        fanned = run_parallel(SAMPLE, jobs=3, collect_telemetry=True,
                              **no_cache_kwargs)
        # wall-time histograms legitimately vary; deterministic sections don't
        assert serial.telemetry["counters"] == fanned.telemetry["counters"]
        for name, series in serial.telemetry["histograms"].items():
            if name.endswith("_seconds"):
                continue
            assert series == fanned.telemetry["histograms"][name], name

    def test_cache_hits_counted(self, tmp_path):
        kwargs = {"cache_dir": tmp_path / "cache", "use_cache": True}
        run_parallel(["E1"], jobs=1, **kwargs)
        report = run_parallel(["E1"], jobs=1, collect_telemetry=True, **kwargs)
        counters = report.telemetry["counters"]
        assert counters["repro_runner_tasks_total"]['cache="hit"'] == 1
        # a cached task never simulates anything
        assert "repro_rounds_total" not in counters

    def test_stats_payload_and_write_stats_carry_telemetry(
        self, tmp_path, no_cache_kwargs
    ):
        import json

        report = run_parallel(["E1"], jobs=1, collect_telemetry=True,
                              **no_cache_kwargs)
        payload = report.stats_payload()
        assert payload["telemetry"] == report.telemetry
        dest = report.write_stats(tmp_path / "out" / "stats.json")
        on_disk = json.loads(dest.read_text())
        assert on_disk["telemetry"]["counters"] == report.telemetry["counters"]
