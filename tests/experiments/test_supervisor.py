"""The supervised pool: retries, timeouts, rebuilds, quarantine, degradation.

Every scenario here drives :func:`supervised_map` with a deterministic
fault plan (see :mod:`repro.faults`) — chaos with a fixed script, so the
assertions are exact: which task fails, on which attempt, with which
kind, and what the counters read afterwards.
"""

import pytest

from repro import faults, telemetry
from repro.experiments.supervisor import (
    SupervisorConfig,
    backoff_delay,
    supervised_map,
)
from repro.faults import FaultPlan

#: fast deterministic backoff so retry-heavy tests stay quick.
FAST = {"backoff_base": 0.01, "backoff_cap": 0.05}


def _body(x, attempt=0):
    """Module-level task body (picklable): optionally faulted, else x*10+attempt."""
    fault = faults.maybe_inject(f"task{x}", attempt)
    if fault == "corrupt":
        return faults.CORRUPTED
    return x * 10 + attempt


def _tasks(n):
    return [(i,) for i in range(n)], [f"task{i}" for i in range(n)]


def _plan(doc: str) -> str:
    return FaultPlan.from_json(doc).to_json()


class TestCleanRuns:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_values_in_request_order_single_attempt(self, jobs):
        tasks, labels = _tasks(6)
        outcomes, stats = supervised_map(
            _body, tasks, labels, SupervisorConfig(jobs=jobs, **FAST)
        )
        assert [o.value for o in outcomes] == [0, 10, 20, 30, 40, 50]
        assert all(o.ok and o.attempts == 1 for o in outcomes)
        assert stats == {
            "retries": 0, "timeouts": 0, "rebuilds": 0,
            "quarantined": 0, "degraded": False,
        }

    def test_empty_task_list(self):
        outcomes, stats = supervised_map(_body, [], [], SupervisorConfig(jobs=2))
        assert outcomes == []
        assert stats["quarantined"] == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            supervised_map(_body, [(1,)], ["a", "b"], SupervisorConfig())


class TestRetries:
    def test_raise_fault_retried_to_success(self):
        plan = _plan('{"faults":[{"task":"task2","kind":"raise","times":1}]}')
        tasks, labels = _tasks(4)
        outcomes, stats = supervised_map(
            _body, tasks, labels,
            SupervisorConfig(jobs=2, retries=2, fault_plan_json=plan, **FAST),
        )
        assert [o.value for o in outcomes] == [0, 10, 21, 30]  # attempt 1 won
        assert outcomes[2].attempts == 2
        assert stats["retries"] == 1 and stats["quarantined"] == 0

    def test_corrupt_payload_detected_and_retried(self):
        plan = _plan('{"faults":[{"task":"task3","kind":"corrupt","times":1}]}')
        tasks, labels = _tasks(4)
        outcomes, stats = supervised_map(
            _body, tasks, labels,
            SupervisorConfig(jobs=2, retries=2, fault_plan_json=plan, **FAST),
            validate=lambda v: isinstance(v, int),
        )
        assert outcomes[3].ok and outcomes[3].value == 31
        assert stats["retries"] == 1

    def test_persistent_failure_quarantined(self):
        plan = _plan('{"faults":[{"task":"task1","kind":"raise","times":-1}]}')
        tasks, labels = _tasks(3)
        outcomes, stats = supervised_map(
            _body, tasks, labels,
            SupervisorConfig(jobs=2, retries=1, fault_plan_json=plan, **FAST),
        )
        assert outcomes[0].ok and outcomes[2].ok  # the rest completed
        failure = outcomes[1].failure
        assert failure is not None
        assert failure.kind == "error"
        assert failure.attempts == 2  # 1 + retries
        assert "FaultInjected" in failure.message
        assert stats["quarantined"] == 1

    def test_retry_results_identical_to_first_try_results(self):
        # The attempt number feeds injection only — a retried task returns
        # what a clean first try would have, bar the attempt marker _body
        # deliberately encodes.
        plan = _plan('{"faults":[{"task":"task0","kind":"raise","times":1}]}')
        tasks, labels = _tasks(2)
        outcomes, _ = supervised_map(
            _body, tasks, labels,
            SupervisorConfig(jobs=1, retries=1, fault_plan_json=plan, **FAST),
        )
        assert outcomes[0].ok


class TestWorkerDeath:
    def test_kill_fault_rebuilds_pool_and_retries(self):
        plan = _plan('{"faults":[{"task":"task1","kind":"kill","times":1}]}')
        tasks, labels = _tasks(4)
        outcomes, stats = supervised_map(
            _body, tasks, labels,
            SupervisorConfig(jobs=2, retries=2, fault_plan_json=plan, **FAST),
        )
        assert [o.ok for o in outcomes] == [True] * 4
        assert outcomes[1].attempts == 2
        assert stats["rebuilds"] == 1
        assert stats["quarantined"] == 0

    def test_hang_fault_times_out_and_retries(self):
        plan = _plan(
            '{"faults":[{"task":"task0","kind":"hang","times":1,'
            '"hang_seconds":30}]}'
        )
        tasks, labels = _tasks(3)
        outcomes, stats = supervised_map(
            _body, tasks, labels,
            SupervisorConfig(jobs=2, retries=1, task_timeout=1.0,
                             fault_plan_json=plan, **FAST),
        )
        assert all(o.ok for o in outcomes)
        assert outcomes[0].attempts == 2
        assert stats["timeouts"] == 1 and stats["rebuilds"] == 1

    def test_persistent_hang_quarantined_as_timeout(self):
        plan = _plan(
            '{"faults":[{"task":"task1","kind":"hang","times":-1,'
            '"hang_seconds":30}]}'
        )
        tasks, labels = _tasks(2)
        outcomes, stats = supervised_map(
            _body, tasks, labels,
            SupervisorConfig(jobs=2, retries=1, task_timeout=0.5,
                             max_rebuilds=5, fault_plan_json=plan, **FAST),
        )
        assert outcomes[0].ok
        assert outcomes[1].failure.kind == "timeout"
        assert stats["timeouts"] == 2  # both attempts hit the budget


class TestDegradation:
    def test_exhausted_rebuilds_degrade_to_inline(self):
        # Every attempt of every task kills its worker; past max_rebuilds
        # the supervisor must finish inline, where kill downgrades to a
        # raise — so the run *terminates*, with everything quarantined,
        # and the test process is still alive to assert it.
        plan = _plan('{"faults":[{"task":"task*","kind":"kill","times":-1}]}')
        tasks, labels = _tasks(3)
        outcomes, stats = supervised_map(
            _body, tasks, labels,
            SupervisorConfig(jobs=2, retries=1, max_rebuilds=2,
                             fault_plan_json=plan, **FAST),
        )
        assert stats["degraded"] is True
        assert all(not o.ok for o in outcomes)
        # Quarantine kind depends on where the attempt budget ran out:
        # "crash" while still pooled, "error" (downgraded kill) once inline.
        assert {o.failure.kind for o in outcomes} <= {"crash", "error"}

    def test_inline_jobs1_downgrades_kill_and_hang(self):
        plan = _plan(
            '{"faults":['
            '{"task":"task0","kind":"kill","times":-1},'
            '{"task":"task1","kind":"hang","times":-1}]}'
        )
        tasks, labels = _tasks(3)
        outcomes, stats = supervised_map(
            _body, tasks, labels,
            SupervisorConfig(jobs=1, retries=0, fault_plan_json=plan, **FAST),
        )
        assert outcomes[0].failure.kind == "error"
        assert outcomes[1].failure.kind == "error"
        assert outcomes[2].ok
        assert stats["rebuilds"] == 0  # no processes were harmed


class TestBackoff:
    def test_deterministic(self):
        config = SupervisorConfig(backoff_seed=7)
        assert backoff_delay(config, "E3", 1) == backoff_delay(config, "E3", 1)

    def test_exponential_within_jittered_envelope(self):
        config = SupervisorConfig(backoff_base=0.1, backoff_cap=10.0)
        for attempt in (1, 2, 3):
            raw = 0.1 * 2 ** (attempt - 1)
            delay = backoff_delay(config, "t", attempt)
            assert raw * 0.5 <= delay < raw

    def test_cap_bounds_the_delay(self):
        config = SupervisorConfig(backoff_base=1.0, backoff_cap=0.2)
        assert backoff_delay(config, "t", 10) < 0.2

    def test_distinct_tasks_decorrelate(self):
        config = SupervisorConfig()
        delays = {backoff_delay(config, f"t{i}", 1) for i in range(8)}
        assert len(delays) == 8


class TestHooks:
    def test_on_result_fires_for_every_terminal_outcome(self):
        plan = _plan('{"faults":[{"task":"task1","kind":"raise","times":-1}]}')
        tasks, labels = _tasks(3)
        seen = []
        supervised_map(
            _body, tasks, labels,
            SupervisorConfig(jobs=2, retries=0, fault_plan_json=plan, **FAST),
            on_result=lambda idx, outcome: seen.append((idx, outcome.ok)),
        )
        assert sorted(seen) == [(0, True), (1, False), (2, True)]

    def test_telemetry_counters_recorded(self):
        plan = _plan(
            '{"faults":['
            '{"task":"task0","kind":"raise","times":1},'
            '{"task":"task1","kind":"raise","times":-1}]}'
        )
        tasks, labels = _tasks(3)
        with telemetry.recording() as rec:
            supervised_map(
                _body, tasks, labels,
                SupervisorConfig(jobs=1, retries=1, fault_plan_json=plan, **FAST),
            )
        counters = rec.snapshot()["counters"]
        assert counters["repro_task_retries_total"]['kind="error"'] == 2
        assert counters["repro_tasks_quarantined_total"]['kind="error"'] == 1
        assert "repro_task_backoff_seconds" in rec.snapshot()["histograms"]
