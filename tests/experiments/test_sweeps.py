"""Unit tests for the sweep infrastructure."""

from repro.experiments.sweeps import SweepResult, grid, run_sweep
from repro.reductions.pipeline import solve_rate_limited
from repro.workloads.generators import rate_limited_workload


class TestGrid:
    def test_cartesian_product(self):
        points = grid(a=[1, 2], b=["x", "y", "z"])
        assert len(points) == 6
        assert {"a": 1, "b": "z"} in points

    def test_single_axis(self):
        assert grid(n=[4, 8]) == [{"n": 4}, {"n": 8}]

    def test_empty(self):
        assert grid() == [{}]


class TestRunSweep:
    def test_collects_long_form_rows(self):
        points = grid(seed=[0, 1], n=[8, 16])

        def build(p):
            return rate_limited_workload(
                num_colors=3, horizon=16, delta=2, seed=p["seed"]
            )

        def run(instance, p):
            res = solve_rate_limited(instance, n=p["n"], record_events=False)
            return {"cost": res.total_cost}

        result = run_sweep(points, build, run)
        assert len(result.rows) == 4
        assert all("cost" in r and "seed" in r and "n" in r for r in result.rows)

    def test_pivot_shape(self):
        result = SweepResult(rows=[
            {"seed": 0, "n": 8, "cost": 10},
            {"seed": 0, "n": 16, "cost": 7},
            {"seed": 1, "n": 8, "cost": 12},
            {"seed": 1, "n": 16, "cost": 9},
        ])
        table = result.pivot("seed", "n", "cost", title="demo")
        text = table.render()
        assert "n=8" in text and "n=16" in text
        assert "12" in text

    def test_pivot_missing_cells_dashed(self):
        result = SweepResult(rows=[{"seed": 0, "n": 8, "cost": 10}])
        result.rows.append({"seed": 1, "n": 16, "cost": 9})
        text = result.pivot("seed", "n", "cost").render()
        assert "-" in text

    def test_where_filters(self):
        result = SweepResult(rows=[
            {"seed": 0, "cost": 1},
            {"seed": 1, "cost": 2},
        ])
        assert result.where(seed=1).column("cost") == [2]

    def test_column(self):
        result = SweepResult(rows=[{"x": 3}, {"x": 5}])
        assert result.column("x") == [3, 5]
