"""Chaos acceptance: a deterministic fault storm against the full engine.

The scenario the fault-tolerance work exists for: a plan that makes one
task raise, one hang past its timeout, one SIGKILL its worker, and one
fail persistently — injected into a ``jobs=4`` run.  The run must
complete, quarantine exactly the persistent failure, and deliver every
surviving cell byte-identical to a fault-free ``jobs=1`` run.
"""

import json

import pytest

from repro.experiments.runner import run_parallel

# Fast deterministic sample (mirrors the determinism suite): E12 and the
# other timing experiments stay out so fingerprints are comparable.
SAMPLE = ["E1", "E2", "E4", "E14", "A2"]

STORM = json.dumps({
    "faults": [
        {"task": "E1", "kind": "raise", "times": 1},
        {"task": "E2", "kind": "hang", "times": 1, "hang_seconds": 30},
        {"task": "E4", "kind": "kill", "times": 1},
        {"task": "E14", "kind": "raise", "times": -1},
    ]
})


@pytest.fixture(scope="module")
def storm_and_reference(tmp_path_factory):
    """One chaos run (jobs=4) and one fault-free reference run (jobs=1)."""
    tmp = tmp_path_factory.mktemp("chaos")
    chaos = run_parallel(
        SAMPLE, jobs=4, retries=2, task_timeout=4.0,
        cache_dir=tmp / "chaos-cache", use_cache=False, fault_plan=STORM,
    )
    reference = run_parallel(
        SAMPLE, jobs=1, cache_dir=tmp / "ref-cache", use_cache=False,
    )
    return chaos, reference


class TestFaultStorm:
    def test_only_the_persistent_failure_is_quarantined(self, storm_and_reference):
        chaos, _ = storm_and_reference
        assert [f.label for f in chaos.failed] == ["E14"]
        assert chaos.failed[0].kind == "error"
        assert chaos.failed[0].attempts == 3  # 1 + retries
        assert set(chaos.results) == set(SAMPLE) - {"E14"}

    def test_survivors_are_byte_identical_to_fault_free_serial(
        self, storm_and_reference
    ):
        chaos, reference = storm_and_reference
        for eid in chaos.results:
            assert (
                chaos.results[eid].fingerprint()
                == reference.results[eid].fingerprint()
            ), eid
            assert (
                chaos.results[eid].render() == reference.results[eid].render()
            ), eid

    def test_supervisor_counters_match_the_script(self, storm_and_reference):
        chaos, _ = storm_and_reference
        stats = chaos.supervisor
        assert stats["degraded"] is False
        assert stats["timeouts"] == 1        # E2's one hang
        assert stats["rebuilds"] == 2        # E2's timeout kill + E4's SIGKILL
        assert stats["quarantined"] == 1     # E14
        # E1 raise + E2 hang + E4 kill retried once each; E14 retried twice.
        assert stats["retries"] == 5

    def test_recovered_tasks_record_their_attempts(self, storm_and_reference):
        chaos, _ = storm_and_reference
        attempts = {r.experiment_id: r.attempts for r in chaos.records}
        assert attempts == {"E1": 2, "E2": 2, "E4": 2, "A2": 1}

    def test_quarantine_lands_in_the_stats_payload(self, storm_and_reference):
        chaos, _ = storm_and_reference
        payload = chaos.stats_payload()
        assert payload["quarantined"] == 1
        assert [f["label"] for f in payload["failed"]] == ["E14"]
        assert payload["supervisor"]["rebuilds"] == 2


class TestCorruptionContainment:
    def test_corrupt_payloads_never_reach_cache_or_results(self, tmp_path):
        plan = json.dumps(
            {"faults": [{"task": "E1", "kind": "corrupt", "times": -1}]}
        )
        poisoned = run_parallel(
            ["E1"], jobs=1, retries=0, cache_dir=tmp_path / "cache",
            fault_plan=plan,
        )
        assert [f.kind for f in poisoned.failed] == ["invalid"]
        assert not poisoned.results
        # Nothing corrupt was cached: the clean rerun recomputes cold and
        # the payload is the genuine article.
        clean = run_parallel(["E1"], jobs=1, cache_dir=tmp_path / "cache")
        assert clean.cache_hits == 0
        assert clean.results["E1"].all_passed

    def test_corrupt_then_clean_retry_recovers(self, tmp_path):
        plan = json.dumps(
            {"faults": [{"task": "E1", "kind": "corrupt", "times": 1}]}
        )
        report = run_parallel(
            ["E1"], jobs=2, retries=1, cache_dir=tmp_path / "cache",
            use_cache=False, fault_plan=plan,
        )
        assert not report.failed
        assert report.records[0].attempts == 2
