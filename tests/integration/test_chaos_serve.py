"""Chaos serve: kill a live shard worker mid-run, demand identical digests.

The acceptance drill for multi-process serve: a real ``repro serve
--workers`` subprocess with a fault plan that SIGKILLs shard 1 at its
first tick, driven by a real ``repro loadgen`` replay with digest
verification against the offline ``Simulator.run``.  If journal-replay
failover loses, duplicates, or reorders so much as one job, the digest
comparison fails — and a control run without the fault plan pins that
the chaos run's digests are the *same* digests, not merely
self-consistent ones.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

KILL_PLAN = json.dumps({
    "seed": 0,
    "faults": [{"task": "serve/shard1/tick/*", "kind": "kill"}],
})


def serve_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def wait_for(path: Path, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists() and path.read_text().strip():
            return
        time.sleep(0.05)
    raise AssertionError(f"{path} did not appear within {timeout}s")


def run_serve_and_loadgen(tmp_path, tag, fault_plan=None):
    """One serve --workers subprocess + one loadgen replay against it."""
    port_file = tmp_path / f"ports-{tag}.json"
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--port-file", str(port_file),
        "--journal", str(tmp_path / f"journal-{tag}.jsonl"),
        "--workers", "--worker-timeout", "10",
        "--shards", "2", "--n", "16", "--delta", "4",
        "--quiet",
    ]
    if fault_plan is not None:
        cmd += ["--inject-faults", fault_plan]
    proc = subprocess.Popen(cmd, env=serve_env(), cwd=REPO)
    try:
        wait_for(port_file)
        ports = json.loads(port_file.read_text())
        report_path = tmp_path / f"report-{tag}.json"
        loadgen = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "loadgen",
                "--port", str(ports["port"]),
                "--workload", "poisson", "--delta", "4", "--seed", "7",
                "--horizon", "64",
                "--json", str(report_path),
            ],
            env=serve_env(),
            cwd=REPO,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert loadgen.returncode == 0, loadgen.stdout + loadgen.stderr
        metrics = ""
        if ports.get("metrics_port"):
            with urllib.request.urlopen(
                f"http://127.0.0.1:{ports['metrics_port']}/metrics",
                timeout=10,
            ) as response:
                metrics = response.read().decode()
        return json.loads(report_path.read_text()), metrics
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0


class TestChaosServe:
    def test_killed_shard_resumes_digest_identical(self, tmp_path):
        chaos, metrics = run_serve_and_loadgen(
            tmp_path, "chaos", fault_plan=KILL_PLAN
        )
        control, _ = run_serve_and_loadgen(tmp_path, "control")

        # The chaos run verified against the offline simulator...
        assert chaos["digests_match"] is True
        # ...and produced the same per-shard digests as the unkilled run.
        assert control["digests_match"] is True
        assert chaos["server_digests"] == control["server_digests"]
        assert chaos["jobs"] == control["jobs"]

        # The respawn really happened (shard 1, exactly the planned one).
        assert 'repro_serve_worker_respawns_total{shard="1"} 1' in metrics
        assert 'repro_serve_worker_respawns_total{shard="0"}' not in metrics
