"""The counterexample corpus.

Concrete mini-instances discovered by hypothesis during development, kept
as named regression tests.  Each one witnesses a *precondition* of one of
the paper's claims: remove the precondition and the claim is false, so
these instances guard both the implementation and the documentation
(docs/reproduction_notes.md) that explains them.
"""

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.core.simulator import simulate
from repro.policies.dlru_edf import DeltaLRUEDFPolicy
from repro.policies.edf import SeqEDFPolicy
from repro.policies.par_edf import par_edf_run


def J(color, arrival, bound):
    return Job(color=color, arrival=arrival, delay_bound=bound)


class TestCorollary31NeedsRateLimiting:
    """Three bound-1 jobs of one color in one batch, m = 3.

    Par-EDF's three unrestricted slots serve all three in the single round;
    DS-Seq-EDF caches *distinct* colors, so only one resource can hold the
    color and only two jobs run (one per mini-round).  The batch exceeds
    D_l = 1, violating the rate limit — which is exactly why Lemma 3.8
    assumes it.
    """

    def make(self):
        return RequestSequence([J(0, 0, 1), J(0, 0, 1), J(0, 0, 1)])

    def test_par_edf_serves_everything(self):
        assert par_edf_run(self.make(), 3).drop_count == 0

    def test_ds_seq_edf_must_drop(self):
        run = simulate(
            Instance(self.make(), 1),
            SeqEDFPolicy(1, gate_eligibility=False),
            n=3, speed=2, record_events=False,
        )
        assert run.drop_cost == 1  # the corollary's inequality fails here

    def test_rate_limited_version_is_fine(self):
        """Cap the batch at D_l = 1 job and the corollary holds again."""
        seq = RequestSequence([J(0, 0, 1)])
        run = simulate(
            Instance(seq, 1), SeqEDFPolicy(1, gate_eligibility=False),
            n=3, speed=2, record_events=False,
        )
        assert run.drop_cost <= par_edf_run(seq, 3).drop_count


class TestCorollary31NeedsUngatedEligibility:
    """A color with fewer than Delta jobs starves under the gated variant."""

    def make(self):
        return RequestSequence([J(0, 0, 2), J(0, 0, 2)])

    def test_gated_ds_seq_edf_drops_small_colors(self):
        run = simulate(
            Instance(self.make(), 5),
            SeqEDFPolicy(5, gate_eligibility=True),
            n=2, speed=2, record_events=False,
        )
        assert run.drop_cost == 2

    def test_ungated_ds_seq_edf_serves_them(self):
        run = simulate(
            Instance(self.make(), 5),
            SeqEDFPolicy(5, gate_eligibility=False),
            n=2, speed=2, record_events=False,
        )
        assert run.drop_cost == 0

    def test_par_edf_floor_would_be_violated_by_gating(self):
        assert par_edf_run(self.make(), 2).drop_count == 0


class TestLemma310NeedsMEqualsNOver8:
    """Three bound-1 colors, Delta=1, n=4: at the m = n/4 reading the chain
    breaks; at m = n/8 (n=8 here) it holds.

    Round 1 delivers two eligible colors; with n=4 the combination holds
    only 2 distinct colors (1 LRU + 1 EDF) and the LRU slot is wasted on a
    stale idle color, so an *eligible* job drops — while DS-Seq-EDF with
    one double-speed resource serves both arrivals.
    """

    def make(self):
        return RequestSequence([J(0, 0, 1), J(1, 1, 1), J(2, 1, 1)])

    def eligible_drops(self, n):
        policy = DeltaLRUEDFPolicy(1)
        run = simulate(Instance(self.make(), 1), policy, n=n,
                       record_events=False)
        return run.drop_cost - len(policy.state.ineligible_drop_uids())

    def ds_drops(self, m):
        alpha = self.make()  # no ineligible drops here; alpha == sigma
        run = simulate(
            Instance(alpha, 1), SeqEDFPolicy(1, gate_eligibility=False),
            n=m, speed=2, record_events=False,
        )
        return run.drop_cost

    def test_chain_breaks_at_n4_with_m_n_over_4(self):
        assert self.eligible_drops(n=4) == 1
        assert self.ds_drops(m=1) == 0  # 1 = n/4 for n=4: 1 > 0 — broken

    def test_chain_holds_at_n8_with_m_n_over_8(self):
        assert self.eligible_drops(n=8) == 0
        assert self.eligible_drops(n=8) <= self.ds_drops(m=1)  # 1 = n/8


class TestAppendixTieBreakMatters:
    """Appendix A's round-0 all-zero-timestamp tie must favor short colors
    for the construction's closed form to hold (reproduction notes §5)."""

    def test_short_colors_win_the_initial_tie(self):
        from repro.workloads.adversarial import anti_dlru_instance
        from repro.policies.dlru import DeltaLRUPolicy

        inst = anti_dlru_instance(n=4, j=2, k=4, delta=1)
        run = simulate(inst, DeltaLRUPolicy(1), n=4)
        round0_colors = {
            rc.new_color for rc in run.events.reconfigs() if rc.round == 0
        }
        assert round0_colors == {0, 1}  # the two short colors, not the long
