"""Documentation guards.

Extract and execute the Python code blocks in README.md and docs/model.md —
documentation that drifts from the API should fail CI, not readers.  Also
smoke-runs the fastest examples in-process.
"""

import pathlib
import re
import runpy

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[2]


def python_blocks(path: pathlib.Path) -> list[str]:
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadmeSnippets:
    def test_quickstart_block_runs(self):
        blocks = python_blocks(ROOT / "README.md")
        assert blocks, "README lost its quickstart code block"
        namespace: dict = {}
        exec(compile(blocks[0], "README.md", "exec"), namespace)


class TestModelDocSnippets:
    def test_all_blocks_run_in_sequence(self):
        blocks = python_blocks(ROOT / "docs" / "model.md")
        assert len(blocks) >= 2, "docs/model.md lost its code blocks"
        namespace: dict = {}
        for i, block in enumerate(blocks):
            exec(compile(block, f"docs/model.md[{i}]", "exec"), namespace)


class TestTenantDocSnippets:
    def test_all_blocks_run_in_sequence(self):
        blocks = python_blocks(ROOT / "docs" / "tenants.md")
        assert blocks, "docs/tenants.md lost its code blocks"
        namespace: dict = {}
        for i, block in enumerate(blocks):
            exec(compile(block, f"docs/tenants.md[{i}]", "exec"), namespace)


class TestOptDocSnippets:
    def test_all_blocks_run_in_sequence(self):
        blocks = python_blocks(ROOT / "docs" / "opt.md")
        assert len(blocks) >= 2, "docs/opt.md lost its code blocks"
        namespace: dict = {}
        for i, block in enumerate(blocks):
            exec(compile(block, f"docs/opt.md[{i}]", "exec"), namespace)


class TestFastExamples:
    @pytest.mark.parametrize("script", [
        "quickstart.py",
        "taxonomy_tour.py",
        "debugging_workflow.py",
        "adversarial_analysis.py",
    ])
    def test_example_runs(self, script, capsys):
        runpy.run_path(str(ROOT / "examples" / script), run_name="__main__")
        out = capsys.readouterr().out
        assert out.strip(), f"{script} produced no output"
