"""End-to-end integration tests across all layers."""

import pytest

from repro.analysis.competitive import empirical_ratio_bracket, empirical_ratio_exact
from repro.core.schedule import validate_schedule
from repro.core.simulator import simulate
from repro.offline.optimal import optimal_cost
from repro.policies.dlru_edf import DeltaLRUEDFPolicy
from repro.reductions.pipeline import solve_batched, solve_online, solve_rate_limited
from repro.workloads.generators import (
    batched_workload,
    poisson_workload,
    rate_limited_workload,
)
from repro.workloads.scenarios import (
    background_shortterm_instance,
    datacenter_workload,
    router_workload,
)


class TestTheorem1EndToEnd:
    """Rate-limited batched input, n = 8m, against the exact optimum."""

    @pytest.mark.parametrize("seed", range(5))
    def test_bounded_ratio_against_exact_opt(self, seed):
        inst = rate_limited_workload(
            num_colors=4, horizon=32, delta=2, seed=seed,
            load=0.4, max_exp=3,
        )
        res = solve_rate_limited(inst, n=8, record_events=False)
        ratio = empirical_ratio_exact(res.total_cost, inst, m=1)
        assert ratio < 16, f"seed {seed}: ratio {ratio}"


class TestTheorem2EndToEnd:
    @pytest.mark.parametrize("seed", range(3))
    def test_batched_pipeline_bracket(self, seed):
        inst = batched_workload(num_colors=4, horizon=64, delta=3, seed=seed)
        res = solve_batched(inst, n=8, record_events=False)
        bracket = empirical_ratio_bracket(res.total_cost, inst, m=1)
        assert bracket.ratio_high < 20


class TestTheorem3EndToEnd:
    @pytest.mark.parametrize("seed", range(3))
    def test_general_pipeline_bracket(self, seed):
        inst = poisson_workload(
            num_colors=4, horizon=96, delta=3, seed=seed, rate=0.25
        )
        res = solve_online(inst, n=8, record_events=False)
        bracket = empirical_ratio_bracket(res.total_cost, inst, m=1)
        assert bracket.ratio_high < 30

    def test_non_power_of_two_general(self):
        inst = poisson_workload(
            num_colors=4, horizon=64, delta=2, seed=11,
            rate=0.3, power_of_two=False,
        )
        res = solve_online(inst, n=8, record_events=False)
        validate_schedule(res.schedule, inst.sequence, inst.delta)


class TestScenarioWorkloads:
    def test_datacenter_runs_clean(self):
        inst = datacenter_workload(num_services=6, horizon=256, delta=4, seed=0)
        res = solve_online(inst, n=16, record_events=False)
        led = validate_schedule(res.schedule, inst.sequence, inst.delta)
        assert led.total_cost == res.total_cost

    def test_router_runs_clean(self):
        inst = router_workload(num_classes=5, horizon=256, delta=4, seed=0)
        res = solve_online(inst, n=16, record_events=False)
        validate_schedule(res.schedule, inst.sequence, inst.delta)

    def test_background_shortterm_served_by_pipeline(self):
        inst = background_shortterm_instance()
        res = solve_online(inst, n=16, record_events=False)
        validate_schedule(res.schedule, inst.sequence, inst.delta)
        # With 16 resources the pipeline should serve the vast majority.
        completion = len(res.schedule.executed_uids()) / inst.sequence.num_jobs
        assert completion > 0.8


class TestCrossLayerConsistency:
    def test_direct_vs_pipeline_on_rate_limited(self):
        """On a rate-limited instance, Distribute's split is a no-op (every
        batch fits in sub-color 0), so solve_batched == solve_rate_limited."""
        inst = rate_limited_workload(num_colors=4, horizon=32, delta=2, seed=5)
        direct = solve_rate_limited(inst, n=8, record_events=False)
        viabatch = solve_batched(inst, n=8, record_events=False)
        assert direct.total_cost == viabatch.total_cost

    def test_opt_never_beaten_at_equal_resources(self):
        inst = rate_limited_workload(
            num_colors=3, horizon=16, delta=2, seed=6, max_exp=2
        )
        opt = optimal_cost(inst, m=4)
        run = simulate(inst, DeltaLRUEDFPolicy(inst.delta), n=4, record_events=False)
        assert opt <= run.total_cost
