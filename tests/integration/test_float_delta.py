"""Tests for the arbitrary-Delta generalization.

The paper assumes an integer ``Delta`` for convenience and notes the
generalization to arbitrary positive ``Delta`` is straightforward; the
implementation accepts any positive float.
"""

import pytest

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.core.schedule import validate_schedule
from repro.core.simulator import simulate
from repro.policies.dlru_edf import DeltaLRUEDFPolicy
from repro.policies.direct import DirectLRUEDFPolicy
from repro.reductions.pipeline import solve_online
from repro.workloads.generators import poisson_workload, rate_limited_workload


def J(color, arrival, bound):
    return Job(color=color, arrival=arrival, delay_bound=bound)


class TestFloatDeltaModel:
    def test_instance_accepts_float(self):
        inst = Instance(RequestSequence([J(0, 0, 2)]), delta=2.5)
        assert inst.delta == 2.5

    def test_nonpositive_rejected(self):
        for bad in (0, 0.0, -1.5):
            with pytest.raises(ValueError):
                Instance(RequestSequence([J(0, 0, 2)]), delta=bad)

    def test_fractional_delta_below_one(self):
        """Delta < 1: a single arrival wraps the counter immediately."""
        inst = Instance(RequestSequence([J(0, 0, 2)]), delta=0.5)
        run = simulate(inst, DeltaLRUEDFPolicy(0.5), n=4)
        assert run.drop_cost == 0
        assert run.ledger.reconfig_cost == pytest.approx(2 * 0.5)

    def test_cost_arithmetic_is_float(self):
        jobs = [J(0, 0, 4) for _ in range(5)]
        inst = Instance(RequestSequence(jobs), delta=1.25)
        run = simulate(inst, DeltaLRUEDFPolicy(1.25), n=4)
        led = validate_schedule(run.schedule, inst.sequence, 1.25)
        assert led.total_cost == pytest.approx(run.total_cost)

    def test_counter_wraps_at_float_threshold(self):
        # delta=2.5: eligibility needs 3 jobs (counts are integers).
        jobs = [J(0, 0, 4) for _ in range(2)]
        inst = Instance(RequestSequence(jobs), delta=2.5)
        policy = DeltaLRUEDFPolicy(2.5)
        run = simulate(inst, policy, n=4)
        assert not policy.state.states[0].eligible
        assert run.drop_cost == 2

        jobs3 = [J(0, 0, 4) for _ in range(3)]
        inst3 = Instance(RequestSequence(jobs3), delta=2.5)
        policy3 = DeltaLRUEDFPolicy(2.5)
        run3 = simulate(inst3, policy3, n=4)
        assert policy3.state.states[0].eligible
        assert run3.drop_cost == 0


class TestFloatDeltaPipelines:
    def test_full_pipeline_with_float_delta(self):
        base = poisson_workload(num_colors=4, horizon=48, delta=3, seed=9)
        inst = Instance(base.sequence, delta=3.75, name="float-delta")
        res = solve_online(inst, n=8, record_events=False)
        led = validate_schedule(res.schedule, inst.sequence, 3.75)
        assert led.total_cost == pytest.approx(res.total_cost)

    def test_direct_policy_with_float_delta(self):
        base = rate_limited_workload(num_colors=4, horizon=32, delta=2, seed=3)
        inst = Instance(base.sequence, delta=1.5)
        run = simulate(inst, DirectLRUEDFPolicy(1.5), n=4, record_events=False)
        assert run.total_cost >= 0

    def test_optimal_solver_with_float_delta(self):
        from repro.offline.optimal import optimal_cost

        jobs = [J(0, 0, 4) for _ in range(3)]
        inst = Instance(RequestSequence(jobs), delta=2.5)
        # Reconfiguring once (2.5) beats dropping three jobs (3.0).
        assert optimal_cost(inst, 1) == pytest.approx(2.5)

    def test_optimal_prefers_drops_under_large_float_delta(self):
        from repro.offline.optimal import optimal_cost

        jobs = [J(0, 0, 4) for _ in range(3)]
        inst = Instance(RequestSequence(jobs), delta=3.5)
        assert optimal_cost(inst, 1) == pytest.approx(3.0)
