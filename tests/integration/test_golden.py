"""Golden regression tests.

Every value here was captured from a verified build (all schedules
validated, exact solver differentially tested against the brute-force
oracle).  A change in any number means an intentional behavioral change —
update the constant *and* say why in the commit — or a regression.

These guard determinism end to end: generator seeding, policy tie-breaking
(the "consistent order of colors"), reduction bookkeeping, and solver search
order are all pinned by these sums.
"""

import pytest

from repro.core.simulator import simulate
from repro.offline.bounds import opt_lower_bound
from repro.offline.heuristic import window_planner_cost
from repro.offline.optimal import optimal_cost
from repro.policies import (
    ClassicLRUPolicy,
    DeltaLRUEDFPolicy,
    DeltaLRUPolicy,
    DirectLRUEDFPolicy,
    EDFPolicy,
    GreedyUtilizationPolicy,
    StaticPartitionPolicy,
)
from repro.reductions.pipeline import solve_batched, solve_online, solve_rate_limited
from repro.workloads.generators import (
    batched_workload,
    bursty_workload,
    poisson_workload,
    rate_limited_workload,
)

GOLDEN = dict([
    ("rl42/dlru", 89),
    ("rl42/edf", 97),
    ("rl42/dlru-edf", 111),
    ("ps42/static", 16),
    ("ps42/classic", 16),
    ("ps42/greedy", 96),
    ("ps42/direct", 167),
    ("rl42/solve_rate_limited", 111),
    ("bt42/solve_batched", 1016),
    ("ps42/solve_online", 140),
    ("bu42/solve_online", 179),
    ("small42/opt_m1", 21),
    ("small42/opt_m2", 13),
    ("rl42/planner_m1", 183),
    ("rl42/lb_m1", 166),
])


@pytest.fixture(scope="module")
def instances():
    return {
        "rl": rate_limited_workload(num_colors=5, horizon=64, delta=3, seed=42),
        "bt": batched_workload(num_colors=4, horizon=64, delta=3, seed=42),
        "ps": poisson_workload(num_colors=5, horizon=64, delta=3, seed=42),
        "bu": bursty_workload(num_colors=5, horizon=64, delta=3, seed=42),
        "small": rate_limited_workload(
            num_colors=3, horizon=16, delta=2, seed=42, max_exp=2
        ),
    }


class TestGoldenPolicies:
    @pytest.mark.parametrize("name,factory", [
        ("dlru", lambda: DeltaLRUPolicy(3)),
        ("edf", lambda: EDFPolicy(3)),
        ("dlru-edf", lambda: DeltaLRUEDFPolicy(3)),
    ])
    def test_section3_policies_on_rate_limited(self, instances, name, factory):
        run = simulate(instances["rl"], factory(), n=8, record_events=False)
        assert run.total_cost == GOLDEN[f"rl42/{name}"]

    @pytest.mark.parametrize("name,factory", [
        ("static", StaticPartitionPolicy),
        ("classic", ClassicLRUPolicy),
        ("greedy", GreedyUtilizationPolicy),
        ("direct", lambda: DirectLRUEDFPolicy(3)),
    ])
    def test_baselines_on_poisson(self, instances, name, factory):
        run = simulate(instances["ps"], factory(), n=8, record_events=False)
        assert run.total_cost == GOLDEN[f"ps42/{name}"]


class TestGoldenSolvers:
    def test_solve_rate_limited(self, instances):
        res = solve_rate_limited(instances["rl"], n=8, record_events=False)
        assert res.total_cost == GOLDEN["rl42/solve_rate_limited"]

    def test_solve_batched(self, instances):
        res = solve_batched(instances["bt"], n=8, record_events=False)
        assert res.total_cost == GOLDEN["bt42/solve_batched"]

    def test_solve_online_poisson(self, instances):
        res = solve_online(instances["ps"], n=8, record_events=False)
        assert res.total_cost == GOLDEN["ps42/solve_online"]

    def test_solve_online_bursty(self, instances):
        res = solve_online(instances["bu"], n=8, record_events=False)
        assert res.total_cost == GOLDEN["bu42/solve_online"]


class TestGoldenOffline:
    def test_exact_optimum(self, instances):
        assert optimal_cost(instances["small"], 1) == GOLDEN["small42/opt_m1"]
        assert optimal_cost(instances["small"], 2) == GOLDEN["small42/opt_m2"]

    def test_window_planner(self, instances):
        assert window_planner_cost(instances["rl"], 1) == GOLDEN["rl42/planner_m1"]

    def test_lower_bound(self, instances):
        assert opt_lower_bound(instances["rl"], 1) == GOLDEN["rl42/lb_m1"]

    def test_bound_bracket_is_consistent(self, instances):
        assert GOLDEN["rl42/lb_m1"] <= GOLDEN["rl42/planner_m1"]
