"""Robustness tests: misbehaving policies and degenerate inputs.

The simulator owns the model's invariants; a policy that asks for the
impossible must be stopped at the boundary, and degenerate-but-legal inputs
must flow through every layer.
"""

import pytest

from repro.core.job import BLACK, Job
from repro.core.request import Instance, RequestSequence
from repro.core.simulator import Policy, simulate
from repro.reductions.pipeline import solve_batched, solve_online, solve_rate_limited


def J(color, arrival, bound):
    return Job(color=color, arrival=arrival, delay_bound=bound)


class OverAskingPolicy(Policy):
    def desired_configuration(self, rnd, mini):
        return [0] * (self.sim.n + 1)


class BlackAskingPolicy(Policy):
    def desired_configuration(self, rnd, mini):
        return [BLACK, 0]


class NoisyPolicy(Policy):
    """Changes its mind completely every round."""

    def desired_configuration(self, rnd, mini):
        return [(rnd + i) % 5 for i in range(self.sim.n)]


class TestMisbehavingPolicies:
    def test_over_asking_policy_rejected(self):
        inst = Instance(RequestSequence([J(0, 0, 2)]), delta=1)
        with pytest.raises(ValueError, match="resources"):
            simulate(inst, OverAskingPolicy(), n=2)

    def test_black_in_desired_is_ignored(self):
        inst = Instance(RequestSequence([J(0, 0, 2)]), delta=1)
        run = simulate(inst, BlackAskingPolicy(), n=2)
        assert run.drop_cost == 0  # color 0 configured, job executed

    def test_noisy_policy_still_yields_valid_schedule(self):
        from repro.core.schedule import validate_schedule

        jobs = [J(c % 5, r, 2) for r in range(10) for c in range(3)]
        inst = Instance(RequestSequence(jobs), delta=1)
        run = simulate(inst, NoisyPolicy(), n=4)
        led = validate_schedule(run.schedule, inst.sequence, inst.delta)
        assert led.total_cost == run.total_cost


class TestDegenerateInputs:
    def test_empty_instance_through_every_solver(self):
        inst = Instance(RequestSequence([]), delta=2)
        for solver in (solve_rate_limited, solve_batched, solve_online):
            assert solver(inst, n=8).total_cost == 0

    def test_single_job_instance(self):
        inst = Instance(RequestSequence([J(0, 0, 2)]), delta=1)
        res = solve_online(inst, n=8)
        assert res.total_cost <= 2  # reconfig or drop, nothing pathological

    def test_one_round_horizon(self):
        inst = Instance(RequestSequence([J(0, 0, 1)]), delta=1)
        res = solve_online(inst, n=4)
        assert res.total_cost >= 0

    def test_huge_delay_bound(self):
        inst = Instance(RequestSequence([J(0, 0, 1 << 16)]), delta=1)
        res = solve_online(inst, n=4, record_events=False)
        assert res.total_cost >= 0

    def test_all_same_round_burst(self):
        jobs = [J(0, 0, 4) for _ in range(100)]
        inst = Instance(RequestSequence(jobs), delta=2)
        res = solve_batched(inst, n=8)
        # Capacity: at most n per round x 4 rounds = 32 executions.
        executed = len(res.schedule.executed_uids())
        assert executed <= 32
        assert executed >= 16  # it should at least use the capacity it has

    def test_many_distinct_colors_single_jobs(self):
        jobs = [J(c, 0, 4) for c in range(50)]
        inst = Instance(RequestSequence(jobs), delta=3)
        res = solve_batched(inst, n=8)
        # Every color has < Delta jobs: eligible never fires; everything
        # drops at unit cost (Lemma 3.1's regime).
        assert res.reconfig_cost == 0
        assert res.drop_cost == 50

    def test_zero_resource_request_rejected(self):
        inst = Instance(RequestSequence([J(0, 0, 2)]), delta=1)
        with pytest.raises(ValueError):
            simulate(inst, NoisyPolicy(), n=0)

    def test_interleaved_extreme_bounds(self):
        jobs = [J(0, r, 1) for r in range(8)] + [J(1, 0, 1 << 10)]
        inst = Instance(RequestSequence(jobs), delta=2)
        res = solve_online(inst, n=8, record_events=False)
        from repro.core.schedule import validate_schedule

        validate_schedule(res.schedule, inst.sequence, inst.delta)
