"""Adversarial-tenant isolation, end to end.

The contract under test (ISSUE 9's acceptance proof): with two tenants
on disjoint shards and one of them flooding at a multiple of its
contracted rate, the compliant tenant's per-shard digests are
*byte-identical* to a run in which the adversary never shows up — the
flood is absorbed entirely by deterministic shedding of the adversary's
own excess.  Checked for all three engines in-process, over the wire
against the asyncio server, and in ``--workers`` mode against the
in-process oracle.
"""

import asyncio
import os
import signal

import pytest

from repro.core.job import Job
from repro.policies import make_policy
from repro.serve.journal import commit_record, round_record, submit_record, tenant_record
from repro.utils.jsonl import JsonlJournal
from repro.serve.loadgen import _replay
from repro.serve.server import SchedulingServer, ServeConfig
from repro.serve.session import ShardedSession, shard_of
from repro.serve.tenants import TenantContract
from repro.serve.workers import WorkerShardedSession
from repro.workloads import tenant_flood_instance, tenant_flood_plan

DELTA = 2
SHARDS = 2
HORIZON = 48
FLOOD = 8


def flood_fixtures(seed=3):
    """(plan, contracts, flood instance, victim-only instance)."""
    plan = tenant_flood_plan(shards=SHARDS, delta=DELTA)
    contracts = [TenantContract.from_dict(e) for e in plan["tenants"]]
    flood = tenant_flood_instance(
        plan, horizon=HORIZON, flood_factor=FLOOD, seed=seed, delta=DELTA
    )
    victim_colors = set(plan["tenants"][0]["colors"])
    return plan, contracts, flood, victim_colors


def rounds_of(instance):
    """Per-round batches, preserving batch order within each round."""
    by_round = {}
    for job in instance.sequence.jobs():
        by_round.setdefault(job.arrival, []).append(job)
    return [by_round.get(r, []) for r in range(instance.sequence.horizon)]


def clone(job):
    """Same identity, fresh object (sessions may not share Job instances)."""
    return Job(
        color=job.color, arrival=job.arrival,
        delay_bound=job.delay_bound, uid=job.uid,
    )


def run_session(engine, contracts, batches, only_colors=None):
    session = ShardedSession(
        n=16,
        delta=DELTA,
        policy_factory=lambda: make_policy(
            "dlru-edf", DELTA, incremental=engine != "reference"
        ),
        shards=SHARDS,
        engine=engine,
    )
    for contract in contracts:
        session.register_tenant(contract)
    shed_total = 0
    for batch in batches:
        jobs = [
            clone(j) for j in batch
            if only_colors is None or j.color in only_colors
        ]
        shed_total += len(session.submit(jobs))
        session.tick()
    digests = [shard.digests() for shard in session.shards]
    executed = sum(
        s.live.num_jobs - s.sim.ledger.drop_count - s.pending
        for s in session.shards
    )
    return digests, shed_total, executed


class TestEngineIsolation:
    @pytest.mark.parametrize("engine", ["reference", "incremental", "array"])
    def test_victim_digests_unchanged_by_flood(self, engine):
        plan, contracts, flood, victim_colors = flood_fixtures()
        batches = rounds_of(flood)
        with_adv, shed, executed = run_session(engine, contracts, batches)
        alone, shed_alone, _ = run_session(
            engine, contracts, batches, only_colors=victim_colors
        )
        # The adversary floods at FLOOD x rate with burst == rate: all but
        # 1/FLOOD of its jobs are shed, none of the victim's are.
        per_round = plan["tenants"][1]["rate"] * (FLOOD - 1)
        assert shed == per_round * (flood.metadata["last_arrival"] + 1)
        assert shed_alone == 0
        # The isolation proof: victim shard 0 digests are byte-identical
        # whether or not the adversary exists at all.
        assert with_adv[0] == alone[0]
        # And the run is not vacuous: the victim's jobs actually execute.
        assert executed > 0

    def test_seed_sweep_incremental(self):
        for seed in (0, 1, 2):
            plan, contracts, flood, victim_colors = flood_fixtures(seed=seed)
            batches = rounds_of(flood)
            with_adv, _, _ = run_session("incremental", contracts, batches)
            alone, _, _ = run_session(
                "incremental", contracts, batches, only_colors=victim_colors
            )
            assert with_adv[0] == alone[0]


class TestServerIsolation:
    """The same proof through the wire protocol and the server WAL path."""

    def run_server(self, tmp_path, tag, instance, plan):
        async def runner():
            config = ServeConfig(
                n=16, delta=DELTA, shards=SHARDS, policy="dlru-edf",
                metrics_port=None,
                journal=str(tmp_path / f"journal-{tag}.jsonl"),
            )
            server = SchedulingServer(config)
            await server.start()
            try:
                report = await _replay(
                    "127.0.0.1", server.port, instance, verify=False,
                    expected_delta=DELTA, tenants=plan["tenants"],
                )
                stats = server.session.stats()
                tenant_stats = server.session.tenant_stats()
                return report, stats, tenant_stats
            finally:
                await server.stop()

        return asyncio.run(runner())

    def test_wire_isolation_and_accounting(self, tmp_path):
        plan, contracts, flood, victim_colors = flood_fixtures()
        # The victim-only run replays the *same* instance minus the
        # adversary's jobs — same uids, same arrival rounds — so shard-0
        # digests must match byte for byte.
        from repro.core.request import Instance, RequestSequence

        vic_jobs = [
            clone(j) for j in flood.sequence.jobs()
            if j.color in victim_colors
        ]
        vic_instance = Instance(
            RequestSequence(vic_jobs, horizon=HORIZON), DELTA, name="vic"
        )

        flooded, fstats, ftenants = self.run_server(tmp_path, "flood", flood, plan)
        alone, astats, _ = self.run_server(tmp_path, "alone", vic_instance, plan)

        victim_row = next(t for t in ftenants if t["name"] == "victim")
        adversary_row = next(t for t in ftenants if t["name"] == "adversary")
        assert victim_row["shed"] == 0
        assert adversary_row["shed"] == flooded.shed > 0
        assert adversary_row["submitted"] == adversary_row["admitted"] + adversary_row["shed"]
        # Victim shard digests identical with and without the flood.
        assert fstats["shards"][0]["digests"] == astats["shards"][0]["digests"]


class TestWorkersParity:
    """Tenant metering in worker processes matches the in-process session."""

    def test_flood_parity_and_failover_replay(self, tmp_path):
        plan, contracts, flood, _ = flood_fixtures()
        path = str(tmp_path / "journal.jsonl")
        journal = JsonlJournal(path, truncate=True)
        ws = WorkerShardedSession(
            n=16, delta=DELTA, policy="dlru-edf", journal_path=path,
            shards=SHARDS,
        )
        oracle = ShardedSession(
            n=16, delta=DELTA,
            policy_factory=lambda: make_policy("dlru-edf", DELTA),
            shards=SHARDS,
        )
        try:
            for contract in contracts:
                journal.append(tenant_record(contract.to_dict()), sync=True)
                ws.register_tenant(contract)
                oracle.register_tenant(contract)
            seq = 0
            for rnd, batch in enumerate(rounds_of(flood)):
                jobs = [clone(j) for j in batch]
                ws.validate(jobs)
                oracle.validate([clone(j) for j in jobs])
                assert ws.last_shed == oracle.last_shed
                kept = ws.last_kept
                seq += 1
                journal.append(submit_record(seq, ws.round, kept), sync=True)
                journal.append(commit_record(seq), sync=False)
                ws.commit(kept)
                oracle.commit(oracle.last_kept)
                if rnd == 20:
                    # Kill a worker mid-run: replay must rebuild the shard
                    # *and its token buckets* from the journal.
                    os.kill(ws._workers[1].worker.process.pid, signal.SIGKILL)
                live = ws.tick()
                control = oracle.tick()
                journal.append(round_record(live), sync=False)
                assert live == control
            live, control = ws.stats(), oracle.stats()
            assert [s["digests"] for s in live["shards"]] == [
                s["digests"] for s in control["shards"]
            ]
        finally:
            ws.close()
            oracle.close()
            journal.close()
