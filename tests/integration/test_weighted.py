"""Tests for the per-color drop-cost extension."""

import pytest

from repro.core.schedule import Schedule, validate_schedule
from repro.extensions.weighted import (
    WeightAwarePolicy,
    run_weighted,
    weighted_cost,
    weighted_workload,
    weights_of,
)
from repro.core.simulator import simulate
from repro.policies.dlru_edf import DeltaLRUEDFPolicy


class TestWeightedWorkload:
    def test_uniform_delay_bound(self):
        inst = weighted_workload(seed=1)
        bounds = set(inst.sequence.delay_bounds().values())
        assert len(bounds) == 1

    def test_weights_mean_one(self):
        inst = weighted_workload(num_colors=10, seed=2, weight_skew=1.2)
        weights = weights_of(inst)
        assert sum(weights.values()) == pytest.approx(10.0)

    def test_skew_zero_is_uniform(self):
        inst = weighted_workload(num_colors=5, seed=3, weight_skew=0.0)
        assert set(weights_of(inst).values()) == {1.0}

    def test_deterministic(self):
        a = weighted_workload(seed=4)
        b = weighted_workload(seed=4)
        assert a.sequence.num_jobs == b.sequence.num_jobs
        assert weights_of(a) == weights_of(b)


class TestWeightedCost:
    def test_unit_weights_match_standard_cost(self):
        inst = weighted_workload(num_colors=5, seed=5, weight_skew=0.0)
        run = simulate(inst, DeltaLRUEDFPolicy(inst.delta), n=8)
        assert weighted_cost(run.schedule, inst) == pytest.approx(run.total_cost)

    def test_empty_schedule_costs_total_weight(self):
        inst = weighted_workload(num_colors=4, horizon=16, seed=6, weight_skew=1.0)
        weights = weights_of(inst)
        expected = sum(weights[j.color] for j in inst.sequence.jobs())
        assert weighted_cost(Schedule(n=1), inst) == pytest.approx(expected)

    def test_default_weights_when_absent(self):
        from repro.workloads.generators import rate_limited_workload

        inst = rate_limited_workload(num_colors=3, horizon=16, delta=2, seed=7)
        run = simulate(inst, DeltaLRUEDFPolicy(2), n=8)
        assert weighted_cost(run.schedule, inst) == pytest.approx(run.total_cost)


class TestWeightAwarePolicy:
    def test_unit_weights_reproduce_vanilla_exactly(self):
        """With w_l = 1 the weighted counter equals the job count, so the
        two policies must produce identical schedules."""
        inst = weighted_workload(num_colors=6, horizon=64, seed=8, weight_skew=0.0)
        vanilla = simulate(inst, DeltaLRUEDFPolicy(inst.delta), n=8)
        aware = simulate(
            inst, WeightAwarePolicy(inst.delta, weights_of(inst)), n=8
        )
        assert vanilla.total_cost == aware.total_cost
        assert vanilla.schedule.executed_uids() == aware.schedule.executed_uids()

    def test_expensive_color_becomes_eligible_faster(self):
        from repro.core.job import Job
        from repro.core.request import Instance, RequestSequence

        # Two jobs of weight 3 reach the Delta=5 threshold; two of weight 1
        # do not.
        jobs = [Job(color=0, arrival=0, delay_bound=4) for _ in range(2)]
        jobs += [Job(color=1, arrival=0, delay_bound=4) for _ in range(2)]
        inst = Instance(
            RequestSequence(jobs), delta=5,
            metadata={"weights": {0: 3.0, 1: 1.0}},
        )
        policy = WeightAwarePolicy(5, {0: 3.0, 1: 1.0})
        simulate(inst, policy, n=4)
        assert policy.state.states[0].eligible
        assert not policy.state.states[1].eligible

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_weighted_schedules_validate(self, seed):
        inst = weighted_workload(num_colors=6, horizon=64, seed=seed, weight_skew=1.5)
        run, _ = run_weighted(inst, n=8, weight_aware=True, record_events=True)
        led = validate_schedule(run.schedule, inst.sequence, inst.delta)
        assert led.total_cost == run.total_cost  # unit-cost ledger still exact

    def test_awareness_helps_under_skew(self):
        inst = weighted_workload(num_colors=8, horizon=128, delta=4, seed=0,
                                 weight_skew=2.0)
        _, blind = run_weighted(inst, n=8, weight_aware=False)
        _, aware = run_weighted(inst, n=8, weight_aware=True)
        assert aware < blind


class TestWeightedProperties:
    def test_skew_zero_equivalence_under_hypothesis(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(seed=st.integers(0, 50), delta=st.integers(1, 5))
        @settings(max_examples=20, deadline=None)
        def check(seed, delta):
            inst = weighted_workload(
                num_colors=5, horizon=32, delta=delta, seed=seed,
                weight_skew=0.0,
            )
            _, blind = run_weighted(inst, n=8, weight_aware=False)
            _, aware = run_weighted(inst, n=8, weight_aware=True)
            assert blind == pytest.approx(aware)

        check()
