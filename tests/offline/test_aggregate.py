"""Unit tests for the Aggregate transformation (Lemma 4.1)."""

import pytest

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.core.schedule import Schedule, validate_schedule
from repro.offline.aggregate import aggregate_schedule
from repro.offline.optimal import optimal_schedule
from repro.reductions.distribute import distribute_sequence
from repro.workloads.generators import batched_workload


def J(color, arrival, bound):
    return Job(color=color, arrival=arrival, delay_bound=bound)


def transform(inst, m=1):
    opt = optimal_schedule(inst, m=m)
    split = distribute_sequence(inst.sequence)
    result = aggregate_schedule(opt.schedule, inst.sequence, split)
    return opt, split, result


class TestAggregateOnOptSchedules:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_validates_and_preserves_executions(self, seed):
        inst = batched_workload(
            num_colors=3, horizon=16, delta=2, seed=seed,
            mean_batch=1.0, max_exp=3,
        )
        opt, split, result = transform(inst)
        validate_schedule(result.schedule, split, inst.delta)
        # Lemma 4.5: same number of executions (drop cost equality).
        assert len(result.schedule.executed_uids()) == len(
            opt.schedule.executed_uids()
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reconfig_cost_within_constant_factor(self, seed):
        inst = batched_workload(
            num_colors=3, horizon=16, delta=2, seed=seed,
            mean_batch=1.5, max_exp=3,
        )
        opt, split, result = transform(inst)
        t_reconfigs = max(opt.schedule.reconfig_count(), 1)
        # Lemma 4.6's constant; the paper's accounting yields <= 7x
        # (1x special + 6x nonspecial); we assert a safe 8x.
        assert result.schedule.reconfig_count() <= 8 * t_reconfigs

    def test_uses_three_times_the_resources(self):
        inst = batched_workload(num_colors=2, horizon=8, delta=1, seed=7)
        opt, split, result = transform(inst)
        assert result.schedule.n == 3 * opt.schedule.n

    def test_two_resource_input(self):
        inst = batched_workload(
            num_colors=3, horizon=16, delta=2, seed=5, mean_batch=1.0, max_exp=2
        )
        opt, split, result = transform(inst, m=2)
        validate_schedule(result.schedule, split, inst.delta)
        assert result.schedule.n == 6
        assert len(result.schedule.executed_uids()) == len(
            opt.schedule.executed_uids()
        )


class TestAggregateCornerCases:
    def test_empty_schedule(self):
        seq = RequestSequence([J(0, 0, 2)])
        split = distribute_sequence(seq)
        result = aggregate_schedule(Schedule(n=1), seq, split)
        assert result.schedule.executed_uids() == set()
        assert result.schedule.reconfig_count() == 0

    def test_oversized_batches_split_across_subcolors(self):
        # 6 jobs of bound 2 in one batch: sub-colors (0,0..2); a schedule
        # executing 4 of them on 2 resources.
        seq = RequestSequence([J(0, 0, 2) for _ in range(6)])
        uids = [job.uid for job in seq.jobs()]
        t = Schedule(n=2)
        t.add_reconfig(0, 0, 0)
        t.add_reconfig(0, 1, 0)
        t.add_execution(0, 0, uids[0])
        t.add_execution(0, 1, uids[1])
        t.add_execution(1, 0, uids[2])
        t.add_execution(1, 1, uids[3])
        split = distribute_sequence(seq)
        result = aggregate_schedule(t, seq, split)
        validate_schedule(result.schedule, split, delta=1)
        assert len(result.schedule.executed_uids()) == 4

    def test_rejects_double_speed(self):
        seq = RequestSequence([J(0, 0, 2)])
        split = distribute_sequence(seq)
        with pytest.raises(ValueError):
            aggregate_schedule(Schedule(n=1, speed=2), seq, split)

    def test_mixed_bounds_nested_blocks(self):
        jobs = (
            [J(0, a, 2) for a in (0, 2, 4, 6)]
            + [J(1, 0, 4) for _ in range(3)]
            + [J(2, 0, 8) for _ in range(5)]
        )
        seq = RequestSequence(jobs)
        inst = Instance(seq, delta=1)
        opt = optimal_schedule(inst, m=1)
        split = distribute_sequence(seq)
        result = aggregate_schedule(opt.schedule, seq, split)
        validate_schedule(result.schedule, split, inst.delta)
        assert len(result.schedule.executed_uids()) == len(
            opt.schedule.executed_uids()
        )
