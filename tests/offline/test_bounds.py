"""Unit tests for the OPT lower bounds."""

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.offline.bounds import color_lower_bound, drop_lower_bound, opt_lower_bound
from repro.offline.optimal import optimal_cost
from repro.workloads.generators import rate_limited_workload, uniform_workload


def J(color, arrival, bound):
    return Job(color=color, arrival=arrival, delay_bound=bound)


class TestDropLowerBound:
    def test_zero_when_capacity_suffices(self):
        seq = RequestSequence([J(0, 0, 4), J(1, 0, 4)])
        assert drop_lower_bound(seq, 2) == 0

    def test_counts_unavoidable_drops(self):
        seq = RequestSequence([J(0, 0, 1) for _ in range(4)])
        assert drop_lower_bound(seq, 1) == 3

    def test_monotone_in_m(self):
        seq = RequestSequence([J(c % 2, r, 2) for r in range(6) for c in range(3)])
        assert drop_lower_bound(seq, 1) >= drop_lower_bound(seq, 2)


class TestColorLowerBound:
    def test_caps_at_delta_per_color(self):
        seq = RequestSequence([J(0, 0, 4) for _ in range(10)])
        assert color_lower_bound(seq, delta=3) == 3

    def test_small_colors_count_their_jobs(self):
        seq = RequestSequence([J(0, 0, 4), J(1, 0, 4), J(1, 4, 4)])
        assert color_lower_bound(seq, delta=5) == 1 + 2

    def test_sums_over_colors(self):
        seq = RequestSequence(
            [J(c, 0, 4) for c in range(3) for _ in range(9)]
        )
        assert color_lower_bound(seq, delta=2) == 6


class TestOptLowerBound:
    def test_is_max_of_components(self):
        seq = RequestSequence([J(0, 0, 1) for _ in range(6)])
        inst = Instance(seq, delta=2)
        assert opt_lower_bound(inst, 1) == max(
            drop_lower_bound(seq, 1), color_lower_bound(seq, 2)
        )

    def test_sound_against_exact_optimum(self):
        """The bound never exceeds the true optimum on solvable instances."""
        for seed in range(4):
            inst = uniform_workload(
                num_colors=3, horizon=10, delta=2, seed=seed,
                jobs_per_round=1, max_exp=2,
            )
            for m in (1, 2):
                assert opt_lower_bound(inst, m) <= optimal_cost(inst, m)

    def test_sound_on_rate_limited(self):
        inst = rate_limited_workload(
            num_colors=3, horizon=16, delta=2, seed=1, max_exp=2
        )
        assert opt_lower_bound(inst, 1) <= optimal_cost(inst, 1)
