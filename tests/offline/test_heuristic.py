"""Unit tests for the window-planning offline heuristic."""

import pytest

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.core.schedule import validate_schedule
from repro.offline.heuristic import window_planner_cost, window_planner_schedule
from repro.offline.optimal import optimal_cost
from repro.workloads.generators import rate_limited_workload, uniform_workload


def inst_of(jobs, delta=2):
    return Instance(RequestSequence(jobs), delta=delta)


def J(color, arrival, bound):
    return Job(color=color, arrival=arrival, delay_bound=bound)


class TestWindowPlanner:
    def test_schedule_validates(self):
        inst = rate_limited_workload(num_colors=4, horizon=32, delta=2, seed=0)
        schedule = window_planner_schedule(inst, m=2)
        led = validate_schedule(schedule, inst.sequence, inst.delta)
        assert led.total_cost == window_planner_cost(inst, 2)

    def test_serves_trivial_single_color(self):
        jobs = [J(0, 0, 8) for _ in range(4)]
        inst = inst_of(jobs, delta=2)
        assert window_planner_cost(inst, 1) == 2  # one reconfiguration

    def test_skips_unprofitable_colors(self):
        # One job, delta=5: dropping (1) beats configuring (5).
        inst = inst_of([J(0, 0, 2)], delta=5)
        assert window_planner_cost(inst, 1) == 1

    def test_upper_bounds_opt(self):
        for seed in range(3):
            inst = uniform_workload(
                num_colors=3, horizon=10, delta=2, seed=seed,
                jobs_per_round=1, max_exp=2,
            )
            assert window_planner_cost(inst, 1) >= optimal_cost(inst, 1)

    def test_keeps_configured_colors_across_windows(self):
        jobs = [J(0, a, 4) for a in (0, 4, 8, 12) for _ in range(3)]
        inst = inst_of(jobs, delta=3)
        schedule = window_planner_schedule(inst, m=1, window=4)
        assert schedule.reconfig_count() == 1

    def test_invalid_args(self):
        inst = inst_of([J(0, 0, 2)])
        with pytest.raises(ValueError):
            window_planner_schedule(inst, m=0)
        with pytest.raises(ValueError):
            window_planner_schedule(inst, m=1, window=0)

    def test_explicit_window_respected(self):
        inst = rate_limited_workload(num_colors=3, horizon=32, delta=2, seed=5)
        a = window_planner_cost(inst, 2, window=4)
        b = window_planner_cost(inst, 2, window=16)
        assert a >= 0 and b >= 0  # both run; values may differ
