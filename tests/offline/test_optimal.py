"""Unit tests for the exact optimal offline solver."""

import pytest

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.core.schedule import validate_schedule
from repro.offline.optimal import SearchBudgetExceeded, optimal_cost, optimal_schedule


def inst_of(jobs, delta=2):
    return Instance(RequestSequence(jobs), delta=delta)


def J(color, arrival, bound):
    return Job(color=color, arrival=arrival, delay_bound=bound)


class TestExactValues:
    def test_empty_instance_costs_nothing(self):
        assert optimal_cost(inst_of([]), m=1) == 0

    def test_single_job_costs_min_of_delta_and_drop(self):
        # One job: either configure (delta) or drop (1).
        assert optimal_cost(inst_of([J(0, 0, 2)], delta=3), m=1) == 1
        assert optimal_cost(inst_of([J(0, 0, 2)], delta=1), m=1) == 1

    def test_many_jobs_justify_reconfiguration(self):
        jobs = [J(0, 0, 8) for _ in range(5)]
        assert optimal_cost(inst_of(jobs, delta=3), m=1) == 3

    def test_capacity_forces_drops(self):
        # 4 jobs, deadline 2, one resource: at most 2 executions.
        jobs = [J(0, 0, 2) for _ in range(4)]
        assert optimal_cost(inst_of(jobs, delta=1), m=1) == 1 + 2

    def test_two_colors_one_resource(self):
        # Colors interleave; delta=1 so switching is cheap.
        jobs = [J(0, 0, 2), J(1, 0, 2), J(0, 2, 2), J(1, 2, 2)]
        cost = optimal_cost(inst_of(jobs, delta=1), m=1)
        # Serve one color per batch (2 reconfigs + 2 drops) or switch within
        # batches; either way 4 is achievable and optimal here:
        # round 0: color0, round 1: color1, round 2: color0, round 3: color1
        # -> 4 reconfigs? No: config persists; switching each round = 4
        # reconfigs.  Serving color0 rounds 0,2 and color1 rounds 1,3 needs
        # reconfig each round (4).  Alternative: color0 at 0, color1 at 1,
        # color0 at 2... any full service costs 4; dropping 2 of one color
        # costs 1 reconfig + 2 drops = 3.
        assert cost == 3

    def test_second_resource_helps(self):
        jobs = [J(0, 0, 2), J(1, 0, 2), J(0, 2, 2), J(1, 2, 2)]
        one = optimal_cost(inst_of(jobs, delta=1), m=1)
        two = optimal_cost(inst_of(jobs, delta=1), m=2)
        assert two == 2  # one reconfig per color, everything served
        assert two < one

    def test_replication_on_one_color(self):
        # 4 jobs of one color, deadline 2, two resources: double-configure.
        jobs = [J(0, 0, 2) for _ in range(4)]
        assert optimal_cost(inst_of(jobs, delta=1), m=2) == 2

    def test_monotone_in_m(self):
        jobs = [J(c % 3, r, 2) for r in range(0, 6, 2) for c in range(4)]
        inst = inst_of(jobs, delta=2)
        costs = [optimal_cost(inst, m) for m in (1, 2, 3)]
        assert costs == sorted(costs, reverse=True)

    def test_monotone_in_delta(self):
        jobs = [J(0, 0, 4) for _ in range(4)] + [J(1, 0, 4) for _ in range(4)]
        costs = [
            optimal_cost(inst_of(jobs, delta=d), m=1) for d in (1, 2, 4, 8)
        ]
        assert costs == sorted(costs)


class TestScheduleReconstruction:
    def test_schedule_achieves_reported_cost(self):
        jobs = [J(c % 2, r, 2) for r in range(0, 8, 2) for c in range(3)]
        inst = inst_of(jobs, delta=2)
        result = optimal_schedule(inst, m=2)
        led = validate_schedule(result.schedule, inst.sequence, inst.delta)
        assert led.total_cost == result.cost

    def test_breakdown_properties(self):
        jobs = [J(0, 0, 4) for _ in range(3)]
        inst = inst_of(jobs, delta=2)
        result = optimal_schedule(inst, m=1)
        assert result.cost == result.reconfig_cost + result.drop_cost
        assert result.states_explored > 0

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            optimal_cost(inst_of([J(0, 0, 2)]), m=0)

    def test_budget_guard(self):
        jobs = [J(c, r, 4) for r in range(0, 16, 4) for c in range(4)]
        inst = inst_of(jobs, delta=1)
        with pytest.raises(SearchBudgetExceeded):
            optimal_cost(inst, m=2, max_states=10)


class TestAgainstBruteForceIntuition:
    def test_never_below_lower_bounds(self):
        from repro.offline.bounds import opt_lower_bound

        jobs = [J(c % 3, r, 2) for r in range(0, 8, 2) for c in range(4)]
        inst = inst_of(jobs, delta=2)
        for m in (1, 2):
            assert optimal_cost(inst, m) >= opt_lower_bound(inst, m)

    def test_never_above_heuristic(self):
        from repro.offline.heuristic import window_planner_cost

        jobs = [J(c % 3, r, 4) for r in range(0, 12, 4) for c in range(4)]
        inst = inst_of(jobs, delta=2)
        for m in (1, 2):
            assert optimal_cost(inst, m) <= window_planner_cost(inst, m)
