"""Unit tests for punctualization (Lemmas 5.1–5.3)."""

import pytest

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.core.schedule import Schedule, validate_schedule
from repro.offline.optimal import optimal_schedule
from repro.offline.punctual import (
    classify_execution,
    punctualize,
    punctualize_early,
    split_by_punctuality,
)
from repro.workloads.generators import uniform_workload


def J(color, arrival, bound, **kw):
    return Job(color=color, arrival=arrival, delay_bound=bound, **kw)


class TestClassification:
    def test_early(self):
        job = J(0, 0, 8)  # half-blocks of 4
        assert classify_execution(job, 2) == "early"

    def test_punctual(self):
        job = J(0, 0, 8)
        assert classify_execution(job, 5) == "punctual"

    def test_late(self):
        job = J(0, 2, 8)  # arrival hb 0, window up to round 9
        assert classify_execution(job, 8) == "late"

    def test_bound_one_always_punctual(self):
        assert classify_execution(J(0, 3, 1), 3) == "punctual"

    def test_outside_window_rejected(self):
        with pytest.raises(ValueError):
            classify_execution(J(0, 0, 8), 12)

    def test_odd_bound_rejected(self):
        with pytest.raises(ValueError):
            classify_execution(J(0, 0, 3), 0)


class TestSplit:
    def test_partition_covers_all_executions(self):
        inst = uniform_workload(
            num_colors=3, horizon=16, delta=2, seed=2,
            jobs_per_round=1, min_exp=1, max_exp=3,
        )
        opt = optimal_schedule(inst, m=1)
        parts = split_by_punctuality(opt.schedule, inst.sequence)
        total = sum(len(p.executions) for p in parts.values())
        assert total == len(opt.schedule.executions)

    def test_each_part_keeps_reconfigs(self):
        inst = uniform_workload(
            num_colors=2, horizon=8, delta=1, seed=3,
            jobs_per_round=1, min_exp=1, max_exp=2,
        )
        opt = optimal_schedule(inst, m=1)
        parts = split_by_punctuality(opt.schedule, inst.sequence)
        for part in parts.values():
            assert len(part.reconfigs) == len(opt.schedule.reconfigs)


class TestPunctualizeEarly:
    def test_simple_early_run(self):
        # Two jobs executed in their arrival half-block.
        jobs = [J(0, 0, 8, uid=1), J(0, 1, 8, uid=2)]
        seq = RequestSequence(jobs)
        s = Schedule(n=1)
        s.add_reconfig(0, 0, 0)
        s.add_execution(0, 0, 1)
        s.add_execution(1, 0, 2)
        out = punctualize_early(s, seq)
        led = validate_schedule(out, seq, delta=1)
        assert out.executed_uids() == {1, 2}
        for ex in out.executions:
            job = next(j for j in seq.jobs() if j.uid == ex.uid)
            assert classify_execution(job, ex.round) == "punctual"

    def test_rejects_multi_resource(self):
        seq = RequestSequence([J(0, 0, 8)])
        with pytest.raises(ValueError):
            punctualize_early(Schedule(n=2), seq)


class TestPunctualizeFull:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_opt_schedules_punctualize(self, seed):
        inst = uniform_workload(
            num_colors=3, horizon=20, delta=2, seed=seed,
            jobs_per_round=1, min_exp=1, max_exp=3,
        )
        opt = optimal_schedule(inst, m=1)
        out = punctualize(opt.schedule, inst.sequence)
        led = validate_schedule(out, inst.sequence, inst.delta)
        # Lemma 5.3: same jobs executed on 7 resources, all punctually.
        assert out.n == 7
        assert out.executed_uids() == opt.schedule.executed_uids()
        jobs = {j.uid: j for j in inst.sequence.jobs()}
        assert all(
            classify_execution(jobs[ex.uid], ex.round) == "punctual"
            for ex in out.executions
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reconfig_cost_within_constant_factor(self, seed):
        inst = uniform_workload(
            num_colors=3, horizon=20, delta=2, seed=seed,
            jobs_per_round=1, min_exp=1, max_exp=3,
        )
        opt = optimal_schedule(inst, m=1)
        out = punctualize(opt.schedule, inst.sequence)
        base = max(opt.schedule.reconfig_count(), 1)
        # Lemma 5.3's constant: 3x (early) + 1x (punctual) + 3x (late),
        # each O(C); assert a safe 12x envelope.
        assert out.reconfig_count() <= 12 * base

    def test_rejects_multi_resource(self):
        seq = RequestSequence([J(0, 0, 8)])
        with pytest.raises(ValueError):
            punctualize(Schedule(n=3), seq)
