"""Backend tests: exact values, registry semantics, and validation wiring.

The exact-value cases mirror ``tests/offline/test_optimal.py`` so the new
subsystem and the historical offline solver pin the same numbers.
"""

import pytest

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.offline.optimal import optimal_cost
from repro.opt import (
    BACKENDS,
    SearchBudgetExceeded,
    Z3Unavailable,
    available_backends,
    compile_model,
    have_z3,
    resolve_backend,
    solve_brute,
    solve_opt,
    solve_z3,
)


def inst_of(jobs, delta=2):
    return Instance(RequestSequence(jobs), delta=delta)


def J(color, arrival, bound):
    return Job(color=color, arrival=arrival, delay_bound=bound)


def brute_cost(inst, m, **kwargs):
    return solve_opt(inst, m, backend="brute", **kwargs).cost


class TestExactValues:
    """Same instances and numbers as the offline solver's unit tests."""

    def test_empty_instance_costs_nothing(self):
        assert brute_cost(inst_of([]), m=1) == 0

    def test_single_job_costs_min_of_delta_and_drop(self):
        assert brute_cost(inst_of([J(0, 0, 2)], delta=3), m=1) == 1
        assert brute_cost(inst_of([J(0, 0, 2)], delta=1), m=1) == 1

    def test_many_jobs_justify_reconfiguration(self):
        jobs = [J(0, 0, 8) for _ in range(5)]
        assert brute_cost(inst_of(jobs, delta=3), m=1) == 3

    def test_capacity_forces_drops(self):
        jobs = [J(0, 0, 2) for _ in range(4)]
        assert brute_cost(inst_of(jobs, delta=1), m=1) == 1 + 2

    def test_two_colors_one_resource(self):
        jobs = [J(0, 0, 2), J(1, 0, 2), J(0, 2, 2), J(1, 2, 2)]
        assert brute_cost(inst_of(jobs, delta=1), m=1) == 3

    def test_second_resource_helps(self):
        jobs = [J(0, 0, 2), J(1, 0, 2), J(0, 2, 2), J(1, 2, 2)]
        assert brute_cost(inst_of(jobs, delta=1), m=2) == 2

    def test_replication_on_one_color(self):
        jobs = [J(0, 0, 2) for _ in range(4)]
        assert brute_cost(inst_of(jobs, delta=1), m=2) == 2

    def test_agrees_with_offline_solver(self):
        jobs = [J(c % 3, r, 2) for r in range(0, 6, 2) for c in range(4)]
        inst = inst_of(jobs, delta=2)
        for m in (1, 2, 3):
            assert brute_cost(inst, m) == optimal_cost(inst, m)


class TestRegistry:
    def test_backend_names(self):
        assert BACKENDS == ("brute", "z3")

    def test_brute_always_available(self):
        assert "brute" in available_backends()

    def test_auto_and_none_resolve_to_brute(self):
        assert resolve_backend(None) == "brute"
        assert resolve_backend("auto") == "brute"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown opt backend"):
            resolve_backend("simplex")

    def test_z3_resolution_matches_availability(self):
        if have_z3():
            assert resolve_backend("z3") == "z3"
            assert available_backends() == ("brute", "z3")
        else:
            with pytest.raises(Z3Unavailable):
                resolve_backend("z3")
            assert available_backends() == ("brute",)


class TestBruteMechanics:
    def test_budget_guard(self):
        jobs = [J(c, r, 4) for r in range(0, 16, 4) for c in range(4)]
        model = compile_model(inst_of(jobs, delta=1), m=2)
        with pytest.raises(SearchBudgetExceeded):
            solve_brute(model, max_states=10)

    def test_states_reported(self):
        jobs = [J(0, 0, 4) for _ in range(3)]
        result = solve_opt(inst_of(jobs, delta=2), m=1)
        assert result.states is not None and result.states > 0


class TestValidationWiring:
    def test_result_is_validated_with_digests(self):
        jobs = [J(c % 2, r, 2) for r in range(0, 8, 2) for c in range(3)]
        result = solve_opt(inst_of(jobs, delta=2), m=2)
        assert result.validated
        assert result.digests["run"]
        assert result.replay_digest
        assert result.cost == result.reconfig_cost + result.drop_cost

    def test_truncated_horizon_reconciles_excluded_jobs(self):
        jobs = [J(0, 0, 2), J(0, 6, 2), J(0, 7, 2)]
        result = solve_opt(inst_of(jobs, delta=1), m=1, horizon=4)
        assert result.excluded_jobs == 2
        # In-model: one job, delta=1 -> configure once.
        assert result.cost == 1

    def test_replay_engines_agree(self):
        jobs = [J(c % 2, r, 3) for r in range(0, 6, 2) for c in range(3)]
        inst = inst_of(jobs, delta=2)
        results = [
            solve_opt(inst, 2, engine=engine)
            for engine in ("reference", "incremental", "array")
        ]
        costs = {r.cost for r in results}
        digests = {r.digests["run"] for r in results}
        assert len(costs) == 1 and len(digests) == 1


@pytest.mark.skipif(not have_z3(), reason="z3-solver not installed")
class TestZ3Backend:
    def test_exact_values_match_brute(self):
        cases = [
            (inst_of([J(0, 0, 2)], delta=3), 1),
            (inst_of([J(0, 0, 2) for _ in range(4)], delta=1), 1),
            (inst_of([J(0, 0, 2), J(1, 0, 2), J(0, 2, 2), J(1, 2, 2)],
                     delta=1), 1),
            (inst_of([J(0, 0, 2), J(1, 0, 2), J(0, 2, 2), J(1, 2, 2)],
                     delta=1), 2),
        ]
        for inst, m in cases:
            model = compile_model(inst, m)
            assert solve_z3(model).cost == solve_brute(model).cost

    def test_z3_solution_validates_end_to_end(self):
        jobs = [J(c % 2, r, 2) for r in range(0, 8, 2) for c in range(3)]
        result = solve_opt(inst_of(jobs, delta=2), m=2, backend="z3")
        assert result.validated
        assert result.backend == "z3"
