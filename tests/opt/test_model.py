"""Unit tests for the opt formulation layer (repro.opt.model)."""

import pytest

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.opt.model import compile_model


def inst_of(jobs, delta=2):
    return Instance(RequestSequence(jobs), delta=delta)


def J(color, arrival, bound):
    return Job(color=color, arrival=arrival, delay_bound=bound)


class TestCompile:
    def test_empty_instance(self):
        model = compile_model(inst_of([]), m=1)
        assert model.jobs == ()
        assert model.colors == ()
        assert model.excluded_jobs == 0
        assert model.num_config_vars == model.horizon * 1

    def test_colors_are_interned_from_one(self):
        model = compile_model(inst_of([J(7, 0, 2), J(3, 0, 2)]), m=1)
        # cid 0 is reserved for black (the idle color); natives start at 1.
        assert model.colors == (3, 7)
        assert sorted(j.cid for j in model.jobs) == [1, 2]
        assert model.color_of(1) == 3
        assert model.color_of(2) == 7

    def test_jobs_carry_deadline_and_window(self):
        model = compile_model(inst_of([J(0, 1, 3)]), m=1, horizon=8)
        (job,) = model.jobs
        assert job.arrival == 1
        assert job.deadline == 4
        assert job.window_end == 4

    def test_horizon_caps_window(self):
        model = compile_model(inst_of([J(0, 1, 50)]), m=1, horizon=4)
        (job,) = model.jobs
        assert job.window_end == 4

    def test_horizon_defaults_to_sequence_horizon(self):
        inst = inst_of([J(0, 0, 2), J(1, 5, 2)])
        model = compile_model(inst, m=2)
        assert model.horizon == inst.sequence.horizon

    def test_horizon_cannot_exceed_sequence_horizon(self):
        inst = inst_of([J(0, 0, 2)])
        model = compile_model(inst, m=1, horizon=10_000)
        assert model.horizon == inst.sequence.horizon

    def test_jobs_past_horizon_are_excluded_not_charged(self):
        inst = inst_of([J(0, 0, 2), J(0, 6, 2), J(0, 7, 2)])
        model = compile_model(inst, m=1, horizon=4)
        assert len(model.jobs) == 1
        assert model.excluded_jobs == 2

    def test_arrivals_group_by_round_and_cid(self):
        inst = inst_of([J(0, 0, 2), J(0, 0, 2), J(1, 2, 4)])
        model = compile_model(inst, m=2)
        round0 = model.arrivals[0]
        cid0 = next(j.cid for j in model.jobs if j.arrival == 0)
        assert sum(count for _, count in round0[cid0]) == 2
        assert set(model.arrivals) == {0, 2}

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            compile_model(inst_of([J(0, 0, 2)]), m=0)
