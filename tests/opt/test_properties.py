"""Property tests for the opt subsystem.

Two families:

1. **Exhaustive differential testing** on tiny instances (every multiset
   of up to 3 jobs drawn from a 2-color / 4-round universe): the brute
   backend, the historical offline DP, and — when the wheel is present —
   the z3 backend must agree *exactly*, for m in {1, 2}.
2. **OPT is a true lower bound**: on seeded workloads, the optimum never
   exceeds any online policy's cost, under every round engine.
"""

import itertools

import pytest

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.core.simulator import simulate
from repro.offline.optimal import optimal_cost
from repro.opt import compile_model, have_z3, solve_brute, solve_opt, solve_z3
from repro.policies import make_policy
from repro.workloads import lb_adversary_workload, uniform_workload

# The tiny-instance universe: colors {0, 1}, arrivals {0, 1, 2}, bounds
# {1, 2} — every deadline lands within 4 rounds.
TINY_JOB_SPACE = [
    (color, arrival, bound)
    for color in (0, 1)
    for arrival in (0, 1, 2)
    for bound in (1, 2)
]


def tiny_instances(max_jobs=3, delta=1):
    """Every multiset of at most ``max_jobs`` jobs from the tiny universe."""
    for k in range(max_jobs + 1):
        for combo in itertools.combinations_with_replacement(
            TINY_JOB_SPACE, k
        ):
            jobs = [
                Job(color=c, arrival=a, delay_bound=b) for c, a, b in combo
            ]
            yield Instance(RequestSequence(jobs), delta=delta)


class TestExhaustiveTinyDifferential:
    @pytest.mark.parametrize("m", [1, 2])
    def test_brute_matches_offline_dp_everywhere(self, m):
        checked = 0
        for inst in tiny_instances(max_jobs=3, delta=1):
            model = compile_model(inst, m)
            assert solve_brute(model).cost == optimal_cost(inst, m), (
                [(j.color, j.arrival, j.delay_bound)
                 for j in inst.sequence.jobs()], m,
            )
            checked += 1
        assert checked > 200  # the enumeration really is exhaustive

    @pytest.mark.skipif(not have_z3(), reason="z3-solver not installed")
    @pytest.mark.parametrize("m", [1, 2])
    def test_brute_matches_z3_everywhere(self, m):
        for inst in tiny_instances(max_jobs=2, delta=1):
            model = compile_model(inst, m)
            assert solve_z3(model).cost == solve_brute(model).cost, (
                [(j.color, j.arrival, j.delay_bound)
                 for j in inst.sequence.jobs()], m,
            )

    def test_delta_two_slice_agrees_too(self):
        # A smaller delta=2 slice: fractions of the cost trade-off differ.
        for inst in tiny_instances(max_jobs=2, delta=2):
            model = compile_model(inst, m=1)
            assert solve_brute(model).cost == optimal_cost(inst, m=1)


POLICIES = ("dlru", "edf", "dlru-edf")
ENGINES = ("reference", "incremental", "array")


def workload_cases():
    return [
        uniform_workload(
            num_colors=3, horizon=8, delta=2, seed=0, jobs_per_round=1,
            min_exp=0, max_exp=2, name="uniform-tiny",
        ),
        lb_adversary_workload(kind="edf", delta=2, seed=0),
    ]


class TestOptIsALowerBound:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_opt_never_exceeds_any_policy(self, engine):
        # n = m = 4: same resources online and offline (dlru-edf needs
        # n divisible by 4), so OPT <= policy cost is a theorem.
        for instance in workload_cases():
            opt = solve_opt(instance, 4, engine=engine)
            assert opt.validated
            for policy_name in POLICIES:
                run = simulate(
                    instance,
                    make_policy(policy_name, instance.delta),
                    n=4,
                    record_events=False,
                    engine=engine,
                )
                assert opt.cost <= run.total_cost, (
                    instance.name, policy_name, engine,
                )

    def test_adversary_gap_is_strict(self):
        instance = lb_adversary_workload(kind="edf", delta=2, seed=0)
        opt = solve_opt(instance, 4)
        run = simulate(
            instance, make_policy("edf", instance.delta), n=4,
            record_events=False,
        )
        assert run.total_cost > opt.cost
