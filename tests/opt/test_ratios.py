"""Tests for the competitive-ratio dashboard (repro.opt.ratios)."""

import json

import pytest

from repro.experiments.cache import cache_key
from repro.opt import (
    BENCH_FORMAT,
    RATIO_POLICIES,
    ratio_cases,
    ratio_dashboard,
    render_dashboard,
    write_bench,
)


@pytest.fixture(scope="module")
def payload(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("opt-cache")
    return ratio_dashboard("quick", cache_dir=str(cache_dir))


class TestPayload:
    def test_format_and_checks(self, payload):
        assert payload["format"] == BENCH_FORMAT
        assert payload["backend"] == "brute"
        assert payload["ok"]
        assert payload["checks"] == {
            "all_validated": True,
            "opt_leq_policies": True,
            "adversary_gap": True,
        }

    def test_every_cell_is_complete(self, payload):
        assert len(payload["cells"]) == len(ratio_cases("quick"))
        for cell in payload["cells"]:
            assert cell["opt_validated"]
            assert cell["opt_digest"]
            assert cell["n"] == cell["m"] == 4
            assert set(cell["policy_costs"]) == set(RATIO_POLICIES)
            for policy_name in RATIO_POLICIES:
                cost = cell["policy_costs"][policy_name]
                assert cost >= cell["opt_cost"]
                if cell["opt_cost"]:
                    assert cell["ratios"][policy_name] == pytest.approx(
                        cost / cell["opt_cost"], abs=1e-4
                    )

    def test_adversary_cells_beat_every_policy(self, payload):
        adversaries = [c for c in payload["cells"] if c["adversary"]]
        assert len(adversaries) == 2
        for cell in adversaries:
            assert all(r > 1 for r in cell["ratios"].values()), cell

    def test_payload_is_json_serializable(self, payload, tmp_path):
        out = write_bench(payload, tmp_path / "BENCH_opt.json")
        restored = json.loads(out.read_text())
        assert restored["format"] == BENCH_FORMAT
        assert restored["ok"] is True

    def test_render_mentions_every_workload(self, payload):
        text = render_dashboard(payload)
        for cell in payload["cells"]:
            assert cell["workload"] in text
        assert "adversary_gap" in text


class TestCaching:
    def test_second_run_serves_from_cache_identically(
        self, payload, tmp_path_factory
    ):
        cache_dir = tmp_path_factory.mktemp("opt-cache-2")
        cold = ratio_dashboard("quick", cache_dir=str(cache_dir))
        warm = ratio_dashboard("quick", cache_dir=str(cache_dir))
        assert not any(c["cached"] for c in cold["cells"])
        assert all(c["cached"] for c in warm["cells"])
        strip = lambda cells: [
            {k: v for k, v in c.items() if k != "cached"} for c in cells
        ]
        assert strip(cold["cells"]) == strip(warm["cells"])

    def test_cache_key_separates_backend_and_horizon(self):
        # Regression: a z3 OPT (or a truncated-horizon OPT) must never be
        # served for a brute full-horizon request — the identity fields
        # ride in the key's `extra` mapping.
        base = dict(n=4, m=4, delta=2, engine="incremental")
        keys = {
            cache_key("ratio:x", "quick", kind="opt-ratio",
                      extra={**base, "backend": "brute", "horizon": 9}),
            cache_key("ratio:x", "quick", kind="opt-ratio",
                      extra={**base, "backend": "z3", "horizon": 9}),
            cache_key("ratio:x", "quick", kind="opt-ratio",
                      extra={**base, "backend": "brute", "horizon": 5}),
        }
        assert len(keys) == 3

    def test_extra_is_order_insensitive_and_optional(self):
        a = cache_key("e", "quick", kind="opt-ratio",
                      extra={"backend": "brute", "horizon": 9})
        b = cache_key("e", "quick", kind="opt-ratio",
                      extra={"horizon": 9, "backend": "brute"})
        assert a == b
        assert cache_key("e", "quick") == cache_key("e", "quick", extra=None)
        assert cache_key("e", "quick") != a


class TestScales:
    def test_full_scale_extends_quick(self):
        quick = {c.name for c in ratio_cases("quick")}
        full = {c.name for c in ratio_cases("full")}
        assert quick < full

    def test_policies_are_the_dashboard_trio(self):
        assert RATIO_POLICIES == ("dlru", "edf", "dlru-edf")
