"""Unit tests for the baseline policies."""

import pytest

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.core.schedule import validate_schedule
from repro.core.simulator import simulate
from repro.policies.baselines import (
    ClassicLRUPolicy,
    GreedyUtilizationPolicy,
    StaticPartitionPolicy,
)


def inst_of(jobs, delta=2):
    return Instance(RequestSequence(jobs), delta=delta)


def J(color, arrival, bound):
    return Job(color=color, arrival=arrival, delay_bound=bound)


class TestStaticPartition:
    def test_first_seen_allocation(self):
        inst = inst_of([J(0, 0, 2), J(1, 0, 2), J(2, 1, 2)])
        run = simulate(inst, StaticPartitionPolicy(), n=2)
        # Colors 0 and 1 claim the two locations; color 2 starves.
        assert run.reconfig_cost == 2 * inst.delta
        dropped_colors = {
            e.job.color for e in run.events.drops()
        }
        assert 2 in dropped_colors

    def test_never_reconfigures_after_allocation(self):
        jobs = [J(c, r, 2) for r in range(0, 10, 2) for c in range(2)]
        inst = inst_of(jobs)
        run = simulate(inst, StaticPartitionPolicy(), n=2)
        assert run.ledger.reconfig_count == 2

    def test_explicit_allocation(self):
        inst = inst_of([J(0, 0, 2), J(1, 0, 2)])
        run = simulate(inst, StaticPartitionPolicy(allocation=[1]), n=1)
        executed_colors = {e.job.color for e in run.events.executions()}
        assert executed_colors == {1}

    def test_allocation_larger_than_n_rejected(self):
        inst = inst_of([J(0, 0, 2)])
        with pytest.raises(ValueError):
            simulate(inst, StaticPartitionPolicy(allocation=[0, 1]), n=1)

    def test_schedule_validates(self):
        jobs = [J(c % 3, r, 2) for r in range(0, 8, 2) for c in range(4)]
        inst = inst_of(jobs)
        run = simulate(inst, StaticPartitionPolicy(), n=2)
        validate_schedule(run.schedule, inst.sequence, inst.delta)


class TestClassicLRU:
    def test_caches_most_recent_colors(self):
        inst = inst_of([J(0, 0, 4), J(1, 1, 4), J(2, 2, 4)])
        run = simulate(inst, ClassicLRUPolicy(), n=2)
        # At round 2, colors 2 and 1 are the two most recent.
        configured_at_2 = {
            rc.new_color for rc in run.events.reconfigs() if rc.round == 2
        }
        assert 2 in configured_at_2

    def test_thrashing_on_rotation(self):
        # Rotating arrivals of 4 colors through 2 slots: evictions per round.
        jobs = [J(r % 4, r, 4) for r in range(16)]
        inst = inst_of(jobs, delta=1)
        run = simulate(inst, ClassicLRUPolicy(), n=2)
        assert run.ledger.reconfig_count >= 12

    def test_schedule_validates(self):
        jobs = [J(r % 3, r, 2) for r in range(10)]
        inst = inst_of(jobs)
        run = simulate(inst, ClassicLRUPolicy(), n=2)
        validate_schedule(run.schedule, inst.sequence, inst.delta)


class TestGreedyUtilization:
    def test_backlog_proportional_allocation(self):
        jobs = [J(0, 0, 4) for _ in range(6)] + [J(1, 0, 4)]
        inst = inst_of(jobs)
        run = simulate(inst, GreedyUtilizationPolicy(), n=3)
        round0 = [rc.new_color for rc in run.events.reconfigs() if rc.round == 0]
        assert round0.count(0) >= 2

    def test_idle_rounds_configure_nothing(self):
        inst = inst_of([J(0, 4, 2)])
        run = simulate(inst, GreedyUtilizationPolicy(), n=2)
        early = [rc for rc in run.events.reconfigs() if rc.round < 4]
        assert early == []

    def test_executes_everything_with_enough_capacity(self):
        jobs = [J(c, 0, 4) for c in range(3)]
        inst = inst_of(jobs)
        run = simulate(inst, GreedyUtilizationPolicy(), n=3)
        assert run.drop_cost == 0

    def test_schedule_validates(self):
        jobs = [J(c % 4, r, 2) for r in range(0, 12, 2) for c in range(5)]
        inst = inst_of(jobs)
        run = simulate(inst, GreedyUtilizationPolicy(), n=3)
        validate_schedule(run.schedule, inst.sequence, inst.delta)
