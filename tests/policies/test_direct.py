"""Unit tests for the direct unbatched DeltaLRU-EDF heuristic (extension)."""

import pytest

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.core.schedule import validate_schedule
from repro.core.simulator import simulate
from repro.policies.direct import DirectLRUEDFPolicy
from repro.workloads.generators import bursty_workload, poisson_workload


def J(color, arrival, bound):
    return Job(color=color, arrival=arrival, delay_bound=bound)


class TestConstruction:
    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            DirectLRUEDFPolicy(0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            DirectLRUEDFPolicy(2, lru_fraction=-0.1)

    def test_replication_needs_even_n(self):
        inst = Instance(RequestSequence([J(0, 0, 2)]), delta=1)
        with pytest.raises(ValueError, match="even"):
            simulate(inst, DirectLRUEDFPolicy(1), n=3)


class TestUnbatchedHandling:
    def test_counters_advance_on_every_arrival(self):
        """Unlike the Section-3 machinery, off-boundary arrivals count."""
        jobs = [J(0, 1, 4), J(0, 2, 4)]  # both off the D=4 boundary
        inst = Instance(RequestSequence(jobs), delta=2)
        run = simulate(inst, DirectLRUEDFPolicy(2), n=2)
        # Two arrivals wrap the Delta=2 counter -> color cached -> executed.
        assert run.drop_cost == 0

    def test_small_colors_never_cached(self):
        inst = Instance(RequestSequence([J(0, 1, 4)]), delta=5)
        run = simulate(inst, DirectLRUEDFPolicy(5), n=2)
        assert run.reconfig_cost == 0
        assert run.drop_cost == 1

    def test_live_deadline_ranking(self):
        # Color 1 has the earlier pending deadline despite a later arrival.
        jobs = [J(0, 0, 8) for _ in range(4)] + [J(1, 2, 2) for _ in range(2)]
        inst = Instance(RequestSequence(jobs), delta=2)
        run = simulate(inst, DirectLRUEDFPolicy(2, lru_fraction=0.0), n=2)
        # With a pure-EDF cache of one color, round 2 must switch to color 1.
        colors_at_2 = {
            rc.new_color for rc in run.events.reconfigs() if rc.round == 2
        }
        assert 1 in colors_at_2

    def test_idle_timeout_makes_ineligible(self):
        jobs = [J(0, 0, 2), J(0, 0, 2)]  # wrap at round 0 (delta=2)
        inst = Instance(RequestSequence(jobs, horizon=12), delta=2)
        policy = DirectLRUEDFPolicy(2)
        simulate(inst, policy, n=2)
        # Jobs done by round 1; idle + uncached + D_l elapsed -> ineligible.
        # It stays cached though (nothing competes), so it stays eligible
        # unless evicted; force competition:
        jobs2 = [J(0, 0, 2), J(0, 0, 2)] + [J(c, 4, 2) for c in (1, 1, 2, 2)]
        inst2 = Instance(RequestSequence(jobs2, horizon=12), delta=2)
        policy2 = DirectLRUEDFPolicy(2)
        simulate(inst2, policy2, n=2)
        assert not policy2.states[0].eligible


class TestSchedulesValidate:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_poisson(self, seed):
        inst = poisson_workload(num_colors=4, horizon=64, delta=3, seed=seed)
        run = simulate(inst, DirectLRUEDFPolicy(3), n=8)
        led = validate_schedule(run.schedule, inst.sequence, inst.delta)
        assert led.total_cost == run.total_cost

    def test_bursty_unreplicated(self):
        inst = bursty_workload(num_colors=4, horizon=64, delta=3, seed=5)
        run = simulate(inst, DirectLRUEDFPolicy(3, replication=False), n=8)
        validate_schedule(run.schedule, inst.sequence, inst.delta)

    def test_capacity_never_exceeded(self):
        inst = poisson_workload(num_colors=8, horizon=64, delta=2, seed=9, rate=1.0)
        policy = DirectLRUEDFPolicy(2)
        simulate(inst, policy, n=8)
        assert len(policy.lru_set) + len(policy.edf_cached) <= policy.distinct_capacity
