"""Unit tests for algorithm DeltaLRU (Section 3.1.1)."""

import pytest

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.core.schedule import validate_schedule
from repro.core.simulator import simulate
from repro.policies.dlru import DeltaLRUPolicy
from repro.workloads.adversarial import anti_dlru_instance, anti_dlru_offline_schedule


def batched(jobs_spec, delta=1):
    jobs = [
        Job(color=c, arrival=a, delay_bound=b)
        for c, a, b, count in jobs_spec
        for _ in range(count)
    ]
    return Instance(RequestSequence(jobs), delta=delta)


class TestDeltaLRUBasics:
    def test_requires_even_n(self):
        inst = batched([(0, 0, 2, 1)])
        with pytest.raises(ValueError, match="even"):
            simulate(inst, DeltaLRUPolicy(1), n=3)

    def test_ineligible_color_never_cached(self):
        # delta=5 but only 2 jobs: never wraps, never cached, all dropped.
        inst = batched([(0, 0, 2, 2)], delta=5)
        run = simulate(inst, DeltaLRUPolicy(5), n=2)
        assert run.reconfig_cost == 0
        assert run.drop_cost == 2

    def test_eligible_color_cached_in_two_locations(self):
        inst = batched([(0, 0, 4, 4)], delta=2)
        run = simulate(inst, DeltaLRUPolicy(2), n=4)
        # The color wraps at round 0, becomes eligible, gets cached twice.
        reconfigs = run.events.reconfigs()
        assert len(reconfigs) == 2
        assert all(rc.new_color == 0 for rc in reconfigs)

    def test_schedule_validates(self):
        inst = batched([(0, 0, 2, 3), (1, 0, 4, 5), (0, 2, 2, 2)], delta=2)
        run = simulate(inst, DeltaLRUPolicy(2), n=4)
        led = validate_schedule(run.schedule, inst.sequence, inst.delta)
        assert led.total_cost == run.total_cost

    def test_capacity_bound_respected(self):
        # 4 eligible colors but capacity for only 2 distinct (n=4).
        inst = batched([(c, 0, 2, 2) for c in range(4)], delta=1)
        run = simulate(inst, DeltaLRUPolicy(1), n=4)
        for rnd in range(inst.horizon):
            colors = {
                rc.new_color
                for rc in run.events.reconfigs()
                if rc.round == rnd
            }
            assert len(colors) <= 2


class TestDeltaLRURecencyBehavior:
    def test_keeps_recently_stamped_color_through_idleness(self):
        # Color 0 wraps every boundary; color 1 wraps once at round 0.
        spec = [(0, a, 2, 2) for a in range(0, 12, 2)] + [(1, 0, 2, 2)]
        inst = batched(spec, delta=2)
        run = simulate(inst, DeltaLRUPolicy(2), n=2)  # capacity 1 distinct
        # After round 2 color 0's stamps dominate; color 1 evicted at most once.
        late_reconfigs = [rc for rc in run.events.reconfigs() if rc.round >= 4]
        assert all(rc.new_color == 0 for rc in late_reconfigs)


class TestAppendixA:
    def test_dlru_underutilizes_on_adversary(self):
        inst = anti_dlru_instance(n=4, j=2, k=4, delta=1)
        run = simulate(inst, DeltaLRUPolicy(1), n=4)
        # DeltaLRU caches the short colors and drops every long job (2^k).
        assert run.drop_cost == 2 ** 4
        # Reconfigurations: n/2 short colors x 2 locations.
        assert run.reconfig_cost == 4

    def test_offline_beats_dlru(self):
        inst = anti_dlru_instance(n=4, j=2, k=4, delta=1)
        offline = anti_dlru_offline_schedule(inst)
        led = validate_schedule(offline, inst.sequence, inst.delta)
        run = simulate(inst, DeltaLRUPolicy(1), n=4)
        assert run.total_cost > led.total_cost

    def test_offline_cost_matches_closed_form(self):
        n, j, k, delta = 4, 2, 4, 1
        inst = anti_dlru_instance(n=n, j=j, k=k, delta=delta)
        led = validate_schedule(
            anti_dlru_offline_schedule(inst), inst.sequence, delta
        )
        # Delta (one reconfig) + 2^(k-j-1) * n * delta short-job drops.
        assert led.total_cost == delta + 2 ** (k - j - 1) * n * delta
