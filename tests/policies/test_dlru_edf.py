"""Unit tests for algorithm DeltaLRU-EDF (Section 3.1.3)."""

import pytest

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.core.schedule import validate_schedule
from repro.core.simulator import simulate
from repro.policies.dlru import DeltaLRUPolicy
from repro.policies.dlru_edf import DeltaLRUEDFPolicy
from repro.policies.edf import EDFPolicy
from repro.workloads.adversarial import (
    anti_dlru_instance,
    anti_dlru_offline_schedule,
    anti_edf_instance,
    anti_edf_offline_schedule,
)
from repro.workloads.generators import rate_limited_workload


def batched(jobs_spec, delta=1):
    jobs = [
        Job(color=c, arrival=a, delay_bound=b)
        for c, a, b, count in jobs_spec
        for _ in range(count)
    ]
    return Instance(RequestSequence(jobs), delta=delta)


class TestConstruction:
    def test_requires_n_divisible_by_four(self):
        inst = batched([(0, 0, 2, 1)])
        with pytest.raises(ValueError, match="divisible by 4"):
            simulate(inst, DeltaLRUEDFPolicy(1), n=6)

    def test_unreplicated_requires_even_n(self):
        inst = batched([(0, 0, 2, 1)])
        with pytest.raises(ValueError, match="even"):
            simulate(inst, DeltaLRUEDFPolicy(1, replication=False), n=3)

    def test_invalid_lru_fraction(self):
        with pytest.raises(ValueError):
            DeltaLRUEDFPolicy(1, lru_fraction=1.5)

    def test_capacity_split(self):
        inst = batched([(0, 0, 2, 1)])
        policy = DeltaLRUEDFPolicy(1)
        simulate(inst, policy, n=8)
        assert policy.distinct_capacity == 4
        assert policy.lru_capacity == 2
        assert policy.edf_top == 2

    def test_capacity_split_exact_decimal_fraction(self):
        # Regression: the split went through binary floating point, so
        # lru_fraction=0.3 at 10 distinct slots gave int(10 * 0.3) == 2
        # instead of the intended 3.  Floats are now read via their decimal
        # literal (0.3 -> 3/10) before the floor.
        inst = batched([(0, 0, 2, 1)])
        policy = DeltaLRUEDFPolicy(1, lru_fraction=0.3, replication=False)
        simulate(inst, policy, n=10)
        assert policy.distinct_capacity == 10
        assert policy.lru_capacity == 3
        assert policy.edf_top == 7

    def test_capacity_split_accepts_fraction_and_string(self):
        from fractions import Fraction

        inst = batched([(0, 0, 2, 1)])
        for share in (Fraction(7, 10), "7/10", 0.7):
            policy = DeltaLRUEDFPolicy(1, lru_fraction=share, replication=False)
            simulate(inst, policy, n=10)
            assert policy.lru_capacity == 7, share
            assert policy.edf_top == 3, share


class TestCacheStructure:
    def test_each_color_in_two_locations(self):
        inst = batched([(0, 0, 4, 8), (1, 0, 4, 8)], delta=2)
        run = simulate(inst, DeltaLRUEDFPolicy(2), n=8)
        # Count configured copies at the end of round 0 via the event log.
        colors = {}
        for rc in run.events.reconfigs():
            if rc.round == 0:
                colors[rc.location] = rc.new_color
        from collections import Counter
        counts = Counter(colors.values())
        assert all(count == 2 for count in counts.values())

    def test_distinct_capacity_never_exceeded(self):
        inst = batched([(c, 0, 2, 2) for c in range(6)], delta=1)
        policy = DeltaLRUEDFPolicy(1)
        run = simulate(inst, policy, n=8)
        for rnd in range(inst.horizon):
            # Reconstruct cache at each round from policy invariants.
            assert len(policy.lru_set) + len(policy.edf_cached) <= 4

    def test_nonidle_urgent_color_gets_cached(self):
        # Color 9 (bound 2) is urgent and nonidle; many other colors hold
        # the LRU slots.  EDF side must configure color 9.
        spec = [(c, 0, 8, 8) for c in range(3)] + [(9, 0, 2, 2)]
        inst = batched(spec, delta=1)
        run = simulate(inst, DeltaLRUEDFPolicy(1), n=8)
        cached_colors = {rc.new_color for rc in run.events.reconfigs() if rc.round == 0}
        assert 9 in cached_colors


class TestSchedulesValidate:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_rate_limited(self, seed):
        inst = rate_limited_workload(num_colors=5, horizon=64, delta=3, seed=seed)
        run = simulate(inst, DeltaLRUEDFPolicy(3), n=8)
        led = validate_schedule(run.schedule, inst.sequence, inst.delta)
        assert led.total_cost == run.total_cost

    def test_unreplicated_validates(self):
        inst = rate_limited_workload(num_colors=5, horizon=32, delta=2, seed=9)
        run = simulate(inst, DeltaLRUEDFPolicy(2, replication=False), n=8)
        validate_schedule(run.schedule, inst.sequence, inst.delta)


class TestAgainstAdversaries:
    def test_survives_anti_dlru(self):
        inst = anti_dlru_instance(n=4, j=4, k=6, delta=1)
        off = validate_schedule(
            anti_dlru_offline_schedule(inst), inst.sequence, inst.delta
        )
        combo = simulate(inst, DeltaLRUEDFPolicy(1), n=4, record_events=False)
        dlru = simulate(inst, DeltaLRUPolicy(1), n=4, record_events=False)
        assert combo.total_cost < dlru.total_cost
        assert combo.total_cost <= 6 * off.total_cost

    def test_survives_anti_edf(self):
        inst = anti_edf_instance(n=4, j=3, k=6, delta=5)
        off = validate_schedule(
            anti_edf_offline_schedule(inst), inst.sequence, inst.delta
        )
        combo = simulate(inst, DeltaLRUEDFPolicy(5), n=4, record_events=False)
        edf = simulate(inst, EDFPolicy(5), n=4, record_events=False)
        assert combo.total_cost < edf.total_cost
        assert combo.total_cost <= 6 * off.total_cost


class TestEpochInstrumentation:
    def test_epoch_counts_exposed(self):
        inst = rate_limited_workload(num_colors=4, horizon=64, delta=2, seed=3)
        policy = DeltaLRUEDFPolicy(2)
        run = simulate(inst, policy, n=8, record_events=False)
        assert policy.num_epochs >= 1
        assert policy.ineligible_drops >= 0
        # Lemma 3.3 as a hard invariant of this implementation.
        assert run.ledger.reconfig_cost <= 4 * policy.num_epochs * inst.delta
        # Lemma 3.4 likewise.
        assert policy.ineligible_drops <= policy.num_epochs * inst.delta


class TestLemma31SmallColors:
    def test_never_eligible_colors_cost_at_most_their_jobs(self):
        # Each color has fewer than delta jobs: DeltaLRU-EDF never caches
        # anything and drops everything — cost equals the job count, which
        # is at most OFF's cost (Lemma 3.1).
        inst = batched([(0, 0, 4, 2), (1, 0, 4, 1)], delta=5)
        run = simulate(inst, DeltaLRUEDFPolicy(5), n=8)
        assert run.reconfig_cost == 0
        assert run.drop_cost == 3
