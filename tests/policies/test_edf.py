"""Unit tests for algorithm EDF / Seq-EDF (Sections 3.1.2, 3.3)."""

import pytest

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.core.schedule import validate_schedule
from repro.core.simulator import simulate
from repro.policies.edf import EDFPolicy, SeqEDFPolicy
from repro.workloads.adversarial import anti_edf_instance, anti_edf_offline_schedule


def batched(jobs_spec, delta=1):
    jobs = [
        Job(color=c, arrival=a, delay_bound=b)
        for c, a, b, count in jobs_spec
        for _ in range(count)
    ]
    return Instance(RequestSequence(jobs), delta=delta)


class TestEDFBasics:
    def test_requires_even_n_with_replication(self):
        inst = batched([(0, 0, 2, 1)])
        with pytest.raises(ValueError, match="even"):
            simulate(inst, EDFPolicy(1), n=3)

    def test_seq_edf_accepts_odd_n(self):
        inst = batched([(0, 0, 2, 1)])
        simulate(inst, SeqEDFPolicy(1), n=3)  # should not raise

    def test_caches_earliest_deadline_color(self):
        # Color 0 (bound 2) urgent; color 1 (bound 8) relaxed; capacity 1.
        inst = batched([(0, 0, 2, 2), (1, 0, 8, 8)], delta=1)
        run = simulate(inst, EDFPolicy(1), n=2)
        first = [rc for rc in run.events.reconfigs() if rc.round == 0]
        assert {rc.new_color for rc in first} == {0}

    def test_idle_color_ranks_below_nonidle(self):
        # Color 0 has one job (executed round 0), then idle; color 1 stays
        # nonidle.  After round 0, color 1 should displace color 0.
        inst = batched([(0, 0, 4, 2), (1, 0, 4, 8)], delta=1)
        run = simulate(inst, EDFPolicy(1), n=2)
        rc1 = [rc for rc in run.events.reconfigs() if rc.round == 1]
        assert {rc.new_color for rc in rc1} == {1}

    def test_schedule_validates(self):
        inst = batched([(0, 0, 2, 3), (1, 0, 4, 5), (0, 2, 2, 2)], delta=2)
        run = simulate(inst, EDFPolicy(2), n=4)
        led = validate_schedule(run.schedule, inst.sequence, inst.delta)
        assert led.total_cost == run.total_cost

    def test_ungated_executes_small_colors(self):
        # With delta=5 and only 2 jobs, the gated variant drops everything;
        # ungated executes them.
        inst = batched([(0, 0, 2, 2)], delta=5)
        gated = simulate(inst, EDFPolicy(5), n=2)
        ungated = simulate(inst, EDFPolicy(5, gate_eligibility=False), n=2)
        assert gated.drop_cost == 2
        assert ungated.drop_cost == 0


class TestDoubleSpeed:
    def test_ds_seq_edf_executes_twice_per_round(self):
        inst = batched([(0, 0, 1, 1), (0, 1, 1, 2)], delta=1)
        run = simulate(inst, SeqEDFPolicy(1), n=1, speed=2)
        assert len(run.executed_uids) == 3

    def test_ds_drops_at_most_uni_speed(self):
        inst = batched([(0, 0, 2, 4), (1, 0, 2, 4), (0, 2, 2, 4)], delta=1)
        uni = simulate(inst, SeqEDFPolicy(1), n=2, speed=1)
        double = simulate(inst, SeqEDFPolicy(1), n=2, speed=2)
        assert double.drop_cost <= uni.drop_cost


class TestAppendixB:
    def test_edf_thrashes_on_adversary(self):
        inst = anti_edf_instance(n=4, j=3, k=5, delta=5)
        run = simulate(inst, EDFPolicy(5), n=4)
        offline = validate_schedule(
            anti_edf_offline_schedule(inst), inst.sequence, inst.delta
        )
        assert offline.drop_cost == 0
        assert run.total_cost > offline.total_cost
        # The damage is reconfiguration (thrashing), not drops.
        assert run.reconfig_cost > run.drop_cost

    def test_offline_cost_matches_closed_form(self):
        n, j, k, delta = 4, 3, 5, 5
        inst = anti_edf_instance(n=n, j=j, k=k, delta=delta)
        led = validate_schedule(
            anti_edf_offline_schedule(inst), inst.sequence, delta
        )
        assert led.total_cost == (n // 2 + 1) * delta

    def test_ratio_grows_with_k(self):
        ratios = []
        for k in (4, 6):
            inst = anti_edf_instance(n=4, j=3, k=k, delta=5)
            run = simulate(inst, EDFPolicy(5), n=4, record_events=False)
            led = validate_schedule(
                anti_edf_offline_schedule(inst), inst.sequence, inst.delta
            )
            ratios.append(run.total_cost / led.total_cost)
        assert ratios[1] > ratios[0]
