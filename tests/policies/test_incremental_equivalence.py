"""Full-run bit-identity: incremental engine vs the reference engine.

Each test builds one instance (job uids come from a process-global counter,
so both engines must see the *same* ``Instance``) and runs it through both
``incremental=True`` and ``incremental=False``.  The ledger, the schedule,
the event log, and the executed/dropped uid sets must match exactly — this
is the contract that lets ``BENCH_perf.json`` claim a speedup on identical
behaviour.
"""

import pytest

from repro.core.simulator import simulate
from repro.experiments.perf import result_digest
from repro.policies.dlru import DeltaLRUPolicy
from repro.policies.dlru_edf import DeltaLRUEDFPolicy
from repro.policies.edf import EDFPolicy, SeqEDFPolicy
from repro.workloads.generators import bursty_workload, rate_limited_workload
from repro.workloads.scenarios import datacenter_workload


def _assert_equivalent(instance, make_policy, n, speed=1):
    ref = simulate(
        instance, make_policy(incremental=False), n=n, speed=speed,
        incremental=False,
    )
    inc = simulate(
        instance, make_policy(incremental=True), n=n, speed=speed,
        incremental=True,
    )
    assert inc.ledger.summary() == ref.ledger.summary()
    assert inc.schedule.to_json() == ref.schedule.to_json()
    assert [repr(e) for e in inc.events] == [repr(e) for e in ref.events]
    assert sorted(inc.executed_uids) == sorted(ref.executed_uids)
    assert sorted(inc.dropped_uids) == sorted(ref.dropped_uids)
    assert result_digest(inc) == result_digest(ref)


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_dlru_edf_equivalent(seed):
    inst = rate_limited_workload(num_colors=12, horizon=192, delta=4, seed=seed)
    _assert_equivalent(
        inst, lambda incremental: DeltaLRUEDFPolicy(4, incremental=incremental),
        n=8,
    )


def test_dlru_edf_uneven_split_equivalent():
    inst = bursty_workload(num_colors=10, horizon=192, delta=4, seed=1)
    _assert_equivalent(
        inst,
        lambda incremental: DeltaLRUEDFPolicy(
            4, lru_fraction=0.35, incremental=incremental
        ),
        n=12,
    )


@pytest.mark.parametrize("seed", [0, 7])
def test_edf_equivalent(seed):
    inst = rate_limited_workload(num_colors=10, horizon=192, delta=4, seed=seed)
    _assert_equivalent(
        inst, lambda incremental: EDFPolicy(4, incremental=incremental), n=8
    )


def test_seq_edf_speed2_equivalent():
    # DS-Seq-EDF: speed=2 exercises the mini-round path on both engines.
    inst = rate_limited_workload(num_colors=10, horizon=160, delta=4, seed=2)
    _assert_equivalent(
        inst, lambda incremental: SeqEDFPolicy(4, incremental=incremental),
        n=8, speed=2,
    )


@pytest.mark.parametrize("seed", [0, 5])
def test_dlru_equivalent(seed):
    inst = datacenter_workload(num_services=8, horizon=256, delta=8, seed=seed)
    _assert_equivalent(
        inst, lambda incremental: DeltaLRUPolicy(8, incremental=incremental),
        n=8,
    )


def test_string_colors_equivalent():
    # String colors hash by PYTHONHASHSEED; any raw-set iteration on either
    # engine path would break this in-process comparison too.
    from repro.experiments.perf import _string_relabel

    inst = _string_relabel(
        rate_limited_workload(num_colors=12, horizon=160, delta=4, seed=4)
    )
    _assert_equivalent(
        inst, lambda incremental: DeltaLRUEDFPolicy(4, incremental=incremental),
        n=8,
    )
