"""Unit tests for Par-EDF (Section 3.3)."""

import pytest

from repro.core.job import Job
from repro.core.request import RequestSequence
from repro.policies.par_edf import min_drop_cost, par_edf_run


def J(color, arrival, bound, **kw):
    return Job(color=color, arrival=arrival, delay_bound=bound, **kw)


class TestParEDF:
    def test_invalid_m(self):
        with pytest.raises(ValueError):
            par_edf_run(RequestSequence([]), 0)

    def test_executes_everything_when_capacity_suffices(self):
        seq = RequestSequence([J(c, 0, 4) for c in range(4)])
        result = par_edf_run(seq, 4)
        assert result.is_nice
        assert result.executed_count == 4

    def test_drops_overload(self):
        # 5 jobs, deadline 1, one slot.
        seq = RequestSequence([J(0, 0, 1) for _ in range(5)])
        result = par_edf_run(seq, 1)
        assert result.drop_count == 4
        assert result.executed_count == 1

    def test_earliest_deadline_priority(self):
        urgent = J(0, 0, 1, uid=1)
        relaxed = J(1, 0, 8, uid=2)
        result = par_edf_run(RequestSequence([urgent, relaxed]), 1)
        assert 1 in result.executed_uids
        assert 2 in result.executed_uids  # executed later, capacity permits

    def test_leftover_pending_counts_as_dropped(self):
        seq = RequestSequence([J(0, 0, 4) for _ in range(8)], horizon=5)
        result = par_edf_run(seq, 1, horizon=2)
        assert result.executed_count == 2
        assert result.drop_count == 6

    def test_monotone_in_m(self):
        seq = RequestSequence(
            [J(c % 3, r, 2) for r in range(0, 8, 2) for c in range(4)]
        )
        drops = [min_drop_cost(seq, m) for m in (1, 2, 3, 4)]
        assert drops == sorted(drops, reverse=True)

    def test_executions_recorded_in_order(self):
        seq = RequestSequence([J(0, 0, 2), J(0, 0, 2)])
        result = par_edf_run(seq, 1)
        rounds = [rnd for rnd, _ in result.executions]
        assert rounds == sorted(rounds)

    def test_lower_bounds_any_schedule_drop_cost(self):
        """Lemma 3.7 sanity: Par-EDF(m) drops <= drops of a concrete policy."""
        from repro.core.request import Instance
        from repro.core.simulator import simulate
        from repro.policies.baselines import GreedyUtilizationPolicy

        jobs = [J(c % 3, r, 2) for r in range(0, 12, 2) for c in range(5)]
        seq = RequestSequence(jobs)
        inst = Instance(seq, delta=1)
        run = simulate(inst, GreedyUtilizationPolicy(), n=2, record_events=False)
        assert min_drop_cost(seq, 2) <= run.drop_cost
