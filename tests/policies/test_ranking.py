"""Unit tests for the paper's ranking schemes."""

from repro.core.job import Job
from repro.core.request import Request
from repro.policies.ranking import eligible_color_rank_key, job_rank_key
from repro.policies.state import SectionThreeState


def make_state(specs):
    """specs: list of (color, bound, dd)."""
    state = SectionThreeState(delta=1)
    for color, bound, dd in specs:
        st = state.state(color, bound)
        st.dd = dd
        st.eligible = True
    return state


class TestEligibleColorRanking:
    def test_nonidle_before_idle(self):
        state = make_state([(0, 2, 10), (1, 2, 2)])
        key = eligible_color_rank_key(state, idle=lambda c: c == 1)
        # color 1 has the earlier deadline but is idle -> ranks below 0.
        assert sorted([0, 1], key=key) == [0, 1]

    def test_earlier_deadline_first(self):
        state = make_state([(0, 2, 8), (1, 2, 4)])
        key = eligible_color_rank_key(state, idle=lambda c: False)
        assert sorted([0, 1], key=key) == [1, 0]

    def test_deadline_tie_broken_by_delay_bound(self):
        state = make_state([(0, 8, 8), (1, 2, 8)])
        key = eligible_color_rank_key(state, idle=lambda c: False)
        assert sorted([0, 1], key=key) == [1, 0]

    def test_full_tie_broken_by_color_order(self):
        state = make_state([(1, 4, 8), (0, 4, 8)])
        key = eligible_color_rank_key(state, idle=lambda c: False)
        assert sorted([1, 0], key=key) == [0, 1]


class TestJobRanking:
    def test_matches_job_sort_key(self):
        job = Job(color=0, arrival=0, delay_bound=2)
        assert job_rank_key(job) == job.sort_key()

    def test_deadline_then_bound_then_color(self):
        a = Job(color=2, arrival=0, delay_bound=2)   # deadline 2
        b = Job(color=1, arrival=0, delay_bound=4)   # deadline 4
        c = Job(color=0, arrival=2, delay_bound=2)   # deadline 4, tighter bound
        ranked = sorted([b, a, c], key=job_rank_key)
        assert [j.uid for j in ranked] == [a.uid, c.uid, b.uid]
