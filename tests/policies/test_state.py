"""Unit tests for repro.policies.state (the Section-3 bookkeeping)."""

import pytest

from repro.core.job import Job
from repro.core.request import Request
from repro.policies.state import ColorState, SectionThreeState


def J(color, arrival, bound, **kw):
    return Job(color=color, arrival=arrival, delay_bound=bound, **kw)


def request(rnd, *jobs):
    return Request(rnd, tuple(jobs))


def never_cached(color):
    return False


def always_cached(color):
    return True


class TestCounterAndEligibility:
    def test_counter_accumulates(self):
        state = SectionThreeState(delta=5)
        state.on_arrival_phase(0, request(0, J(0, 0, 2), J(0, 0, 2)))
        assert state.state(0).cnt == 2
        assert not state.state(0).eligible

    def test_wrap_makes_eligible(self):
        state = SectionThreeState(delta=3)
        state.on_arrival_phase(0, request(0, *[J(0, 0, 2) for _ in range(4)]))
        st = state.state(0)
        assert st.eligible
        assert st.cnt == 1  # 4 mod 3

    def test_exact_delta_wraps_to_zero(self):
        state = SectionThreeState(delta=3)
        state.on_arrival_phase(0, request(0, *[J(0, 0, 2) for _ in range(3)]))
        assert state.state(0).cnt == 0
        assert state.state(0).eligible

    def test_arrivals_off_batch_boundary_ignored(self):
        # The Section-3 machinery assumes batched input; a request at a
        # non-multiple of D_l leaves the color's counter untouched.
        state = SectionThreeState(delta=1)
        state.on_arrival_phase(0, request(0, J(0, 0, 4)))
        st_before = state.state(0).cnt
        state.on_arrival_phase(1, request(1, J(0, 1, 4)))
        assert state.state(0).cnt == st_before

    def test_deadline_updated_every_boundary(self):
        state = SectionThreeState(delta=2)
        state.on_arrival_phase(0, request(0, J(0, 0, 2)))
        assert state.state(0).dd == 2
        state.on_arrival_phase(2, request(2))
        assert state.state(0).dd == 4

    def test_ineligibility_at_boundary_when_uncached(self):
        state = SectionThreeState(delta=1)
        state.on_arrival_phase(0, request(0, J(0, 0, 2)))
        assert state.state(0).eligible
        state.on_drop_phase(2, [], cached=never_cached)
        assert not state.state(0).eligible
        assert state.state(0).cnt == 0

    def test_cached_color_stays_eligible(self):
        state = SectionThreeState(delta=1)
        state.on_arrival_phase(0, request(0, J(0, 0, 2)))
        state.on_drop_phase(2, [], cached=always_cached)
        assert state.state(0).eligible

    def test_ineligibility_only_at_own_boundary(self):
        state = SectionThreeState(delta=1)
        state.on_arrival_phase(0, request(0, J(0, 0, 4)))
        state.on_drop_phase(2, [], cached=never_cached)  # not a multiple of 4
        assert state.state(0).eligible
        state.on_drop_phase(4, [], cached=never_cached)
        assert not state.state(0).eligible

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            SectionThreeState(delta=0)

    def test_unknown_color_without_bound(self):
        with pytest.raises(KeyError):
            SectionThreeState(delta=1).state(42)


class TestTimestamps:
    def test_no_wrap_means_zero(self):
        st = ColorState(color=0, delay_bound=4)
        assert st.timestamp(10) == 0

    def test_wrap_matures_one_bound_later(self):
        state = SectionThreeState(delta=1)
        state.on_arrival_phase(4, request(4, J(0, 4, 4)))
        st = state.state(0)
        # Wrap happened at round 4; within [4, 8) the latest boundary is 4,
        # and the wrap is not strictly before it.
        assert st.timestamp(4) == 0
        assert st.timestamp(7) == 0
        # From round 8 the boundary is 8 > 4.
        assert st.timestamp(8) == 4

    def test_second_wrap_shadows_first_only_when_mature(self):
        state = SectionThreeState(delta=1)
        state.on_arrival_phase(4, request(4, J(0, 4, 4)))
        state.on_arrival_phase(8, request(8, J(0, 8, 4)))
        st = state.state(0)
        assert st.timestamp(8) == 4   # wrap@8 not yet mature
        assert st.timestamp(12) == 8  # now it is

    def test_lru_order_most_recent_first(self):
        state = SectionThreeState(delta=1)
        state.on_arrival_phase(0, request(0, J(0, 0, 2), J(1, 0, 2)))
        state.on_arrival_phase(2, request(2, J(0, 2, 2)))
        # At round 4: color 0 wrapped at 0 and 2 (ts=2), color 1 at 0 (ts=0).
        order = state.lru_order(4)
        assert order == [0, 1]

    def test_lru_order_ties_broken_by_color(self):
        state = SectionThreeState(delta=1)
        state.on_arrival_phase(0, request(0, J(1, 0, 2), J(0, 0, 2)))
        assert state.lru_order(2) == [0, 1]


class TestEpochAccounting:
    def test_epoch_completes_on_ineligibility(self):
        state = SectionThreeState(delta=1)
        state.on_arrival_phase(0, request(0, J(0, 0, 2)))
        state.on_drop_phase(2, [], cached=never_cached)
        assert state.state(0).epochs_completed == 1
        assert state.num_epochs == 2  # one complete + the live next epoch

    def test_num_epochs_counts_only_seen_colors(self):
        state = SectionThreeState(delta=2)
        state.on_arrival_phase(0, request(0, J(0, 0, 2)))
        assert state.num_epochs == 1

    def test_ineligible_drops_recorded(self):
        state = SectionThreeState(delta=10)
        job = J(0, 0, 2)
        state.on_arrival_phase(0, request(0, job))
        state.on_drop_phase(2, [job], cached=never_cached)
        assert state.total_ineligible_drops == 1
        assert job.uid in state.ineligible_drop_uids()

    def test_eligible_drop_not_counted(self):
        state = SectionThreeState(delta=1)
        job = J(0, 0, 2)
        state.on_arrival_phase(0, request(0, job))  # wraps, eligible
        state.on_drop_phase(2, [job], cached=never_cached)
        assert state.total_ineligible_drops == 0


class TestUngatedMode:
    def test_colors_eligible_on_first_arrival(self):
        state = SectionThreeState(delta=100, gate_eligibility=False)
        state.on_arrival_phase(0, request(0, J(0, 0, 2)))
        assert state.state(0).eligible

    def test_never_become_ineligible(self):
        state = SectionThreeState(delta=100, gate_eligibility=False)
        state.on_arrival_phase(0, request(0, J(0, 0, 2)))
        state.on_drop_phase(2, [], cached=never_cached)
        assert state.state(0).eligible


class TestWrapHistory:
    def test_history_tracked_when_enabled(self):
        state = SectionThreeState(delta=1, track_history=True)
        state.on_arrival_phase(0, request(0, J(0, 0, 2)))
        state.on_arrival_phase(2, request(2, J(0, 2, 2)))
        assert state.wrap_events == [(0, 0), (2, 0)]
        assert state.state(0).wrap_history == [0, 2]

    def test_history_absent_when_disabled(self):
        state = SectionThreeState(delta=1)
        state.on_arrival_phase(0, request(0, J(0, 0, 2)))
        assert state.wrap_events == []
        assert state.state(0).wrap_history is None
