"""Property-based tests for the remaining Section 3.3 analysis lemmas.

- Lemma 3.8: on *nice* inputs (Par-EDF drops nothing with ``m`` slots),
  double-speed Seq-EDF with ``m`` resources drops nothing either.
- Lemma 3.9: DS-Seq-EDF executes at least as many jobs on a sequence as on
  any of its subsequences.

Both hold in the rate-limited, power-of-two-bounds setting the section
assumes, with the ungated (analysis) flavour of Seq-EDF.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.request import Instance, RequestSequence
from repro.core.simulator import simulate
from repro.policies.edf import SeqEDFPolicy
from repro.policies.par_edf import par_edf_run

from tests.conftest import jobs_strategy

rate_limited_jobs = jobs_strategy(
    max_jobs=25, max_colors=4, max_round=16, batched=True, rate_limited=True
)


def _ds_seq_edf(sequence: RequestSequence, m: int, delta: int = 1):
    return simulate(
        Instance(sequence, delta),
        SeqEDFPolicy(delta, gate_eligibility=False),
        n=m,
        speed=2,
        record_events=False,
    )


@given(jobs=rate_limited_jobs, m=st.integers(1, 3))
@settings(max_examples=80, deadline=None)
def test_lemma_38_nice_inputs_drop_free(jobs, m):
    sequence = RequestSequence(jobs)
    assume(par_edf_run(sequence, m).is_nice)
    run = _ds_seq_edf(sequence, m)
    assert run.drop_cost == 0


@given(
    jobs=rate_limited_jobs,
    m=st.integers(1, 2),
    mask=st.lists(st.booleans(), min_size=0, max_size=40),
)
@settings(max_examples=80, deadline=None)
def test_lemma_39_subsequence_monotonicity(jobs, m, mask):
    sequence = RequestSequence(jobs)
    keep = [
        job
        for i, job in enumerate(sequence.jobs())
        if i >= len(mask) or mask[i]
    ]
    alpha = RequestSequence(keep, horizon=sequence.horizon)
    full = _ds_seq_edf(sequence, m)
    sub = _ds_seq_edf(alpha, m)
    assert len(full.executed_uids) >= len(sub.executed_uids)


@given(jobs=rate_limited_jobs, m=st.integers(1, 2))
@settings(max_examples=60, deadline=None)
def test_lemma_39_special_case_empty_subsequence(jobs, m):
    sequence = RequestSequence(jobs)
    alpha = RequestSequence([], horizon=sequence.horizon)
    full = _ds_seq_edf(sequence, m)
    sub = _ds_seq_edf(alpha, m)
    assert len(sub.executed_uids) == 0
    assert len(full.executed_uids) >= 0
