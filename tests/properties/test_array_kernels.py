"""Array-engine kernels against their object-model counterparts.

Each vectorized kernel in :mod:`repro.core.array_engine` has an exact
object-model twin: :func:`sort_run` is the heap's pop order,
:func:`expired_prefix` is ``PendingPool.drop_expired``'s pop-until loop,
:func:`multiset_missing` is the deficit side of
:func:`repro.core.resources.multiset_distance`, and :class:`ColorBucket`
as a whole must be operation-for-operation indistinguishable from
:class:`PendingPool`.  Hypothesis drives both sides over random small
states — including the empty-pool and all-idle edges — and any divergence
is a byte-identity bug waiting to surface in a digest.
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.array_engine import (
    ArrayPendingStore,
    ColorBucket,
    expired_prefix,
    multiset_missing,
    sort_run,
)
from repro.core.job import Job
from repro.core.pending import PendingPool, PendingStore


def J(color, arrival, bound):
    return Job(color=color, arrival=arrival, delay_bound=bound)


# -- sort_run: the ranking-update kernel ------------------------------------------


@st.composite
def same_color_batch(draw):
    count = draw(st.integers(0, 25))
    return [
        J(0, draw(st.integers(0, 20)), draw(st.sampled_from([1, 2, 4, 8])))
        for _ in range(count)
    ]


@given(jobs=same_color_batch())
@settings(max_examples=150, deadline=None)
def test_sort_run_matches_job_sort_key(jobs):
    dl = np.array([j.deadline for j in jobs], dtype=np.int64)
    db = np.array([j.delay_bound for j in jobs], dtype=np.int64)
    uid = np.array([j.uid for j in jobs], dtype=np.int64)
    s_dl, s_db, s_uid = sort_run(dl, db, uid)
    expected = sorted(jobs, key=Job.sort_key)
    assert s_uid.tolist() == [j.uid for j in expected]
    assert s_dl.tolist() == [j.deadline for j in expected]
    assert s_db.tolist() == [j.delay_bound for j in expected]


# -- expired_prefix: the drop-phase pop-until loop --------------------------------


@given(
    deadlines=st.lists(st.integers(0, 30), max_size=25),
    rnd=st.integers(-1, 32),
)
@settings(max_examples=150, deadline=None)
def test_expired_prefix_matches_drop_contract(deadlines, rnd):
    dl = np.array(sorted(deadlines), dtype=np.int64)
    cut = expired_prefix(dl, rnd)
    # Same <= contract as PendingPool.drop_expired: expired means
    # deadline <= rnd, and the expired entries form exactly the prefix.
    assert cut == sum(1 for d in deadlines if d <= rnd)
    assert all(d <= rnd for d in dl[:cut].tolist())
    assert all(d > rnd for d in dl[cut:].tolist())


def test_expired_prefix_empty_array():
    assert expired_prefix(np.array([], dtype=np.int64), 10) == 0


# -- multiset_missing: the resource-diff deficit ----------------------------------


@st.composite
def id_counts(draw):
    ids = sorted(draw(st.sets(st.integers(0, 15), max_size=8)))
    counts = [draw(st.integers(1, 5)) for _ in ids]
    return ids, counts


@given(want=id_counts(), have=id_counts())
@settings(max_examples=150, deadline=None)
def test_multiset_missing_matches_counter_deficit(want, have):
    want_ids, want_counts = want
    have_ids, have_counts = have
    got = multiset_missing(
        np.array(want_ids, dtype=np.int64),
        np.array(want_counts, dtype=np.int64),
        np.array(have_ids, dtype=np.int64),
        np.array(have_counts, dtype=np.int64),
    )
    held = Counter(dict(zip(have_ids, have_counts)))
    expected = [
        max(count - held.get(cid, 0), 0)
        for cid, count in zip(want_ids, want_counts)
    ]
    assert got.tolist() == expected


def test_multiset_missing_empty_have():
    got = multiset_missing(
        np.array([1, 3], dtype=np.int64),
        np.array([2, 4], dtype=np.int64),
        np.array([], dtype=np.int64),
        np.array([], dtype=np.int64),
    )
    assert got.tolist() == [2, 4]


# -- ColorBucket vs PendingPool: the full deadline-bucket model -------------------


@st.composite
def bucket_ops(draw):
    """A random op sequence exercising every bucket entry point."""
    ops = []
    for _ in range(draw(st.integers(0, 40))):
        op = draw(st.sampled_from(
            ["add", "pop", "peek", "drop", "remove", "earliest", "bulk"]
        ))
        if op == "add":
            ops.append(("add", (draw(st.integers(0, 20)),
                                draw(st.sampled_from([1, 2, 4, 8])))))
        elif op == "bulk":
            batch = [
                (draw(st.integers(0, 20)), draw(st.sampled_from([1, 2, 4, 8])))
                for _ in range(draw(st.integers(0, 6)))
            ]
            ops.append(("bulk", batch))
        elif op == "drop":
            ops.append(("drop", draw(st.integers(0, 30))))
        elif op == "pop":
            ops.append(("pop", draw(st.integers(1, 3))))
        else:
            ops.append((op, None))
    return ops


@given(ops=bucket_ops())
@settings(max_examples=200, deadline=None)
def test_bucket_matches_pending_pool(ops):
    pool = PendingPool(0)
    bucket = ColorBucket(0)
    by_uid: dict[int, Job] = {}

    for op, arg in ops:
        if op == "add":
            arrival, bound = arg
            job = J(0, arrival, bound)
            by_uid[job.uid] = job
            pool.add(job)
            bucket.add(job)
        elif op == "bulk":
            jobs = [J(0, a, b) for a, b in arg]
            for job in jobs:
                by_uid[job.uid] = job
                pool.add(job)
            dl = np.array([j.deadline for j in jobs], dtype=np.int64)
            db = np.array([j.delay_bound for j in jobs], dtype=np.int64)
            uid = np.array([j.uid for j in jobs], dtype=np.int64)
            bucket.append_run(*sort_run(dl, db, uid))
        elif op == "pop":
            m = min(arg, len(pool))
            expected = [pool.pop().uid for _ in range(m)]
            assert bucket.pop_front_n(m) == expected
        elif op == "peek":
            peeked = pool.peek()
            assert bucket.peek_uid() == (peeked.uid if peeked else None)
        elif op == "earliest":
            assert bucket.earliest_deadline() == pool.earliest_deadline()
        elif op == "remove":
            pending = pool.pending_jobs()
            if pending:
                victim = pending[len(pending) // 2]
                pool.remove(victim)
                bucket.remove(victim)
        elif op == "drop":
            expected = [j.uid for j in pool.drop_expired(arg)]
            assert bucket.drop_front_expired(arg) == expected
        assert len(bucket) == len(pool)
        assert bucket.idle == pool.idle

    # Final state: identical pending membership in identical rank order.
    assert bucket.live_uids() == [j.uid for j in pool.pending_jobs()]
    for job in by_uid.values():
        assert (job in bucket) == (job in pool)


def test_empty_bucket_edges():
    bucket = ColorBucket("c")
    assert len(bucket) == 0
    assert bucket.idle
    assert bucket.peek_uid() is None
    assert bucket.earliest_deadline() is None
    assert bucket.drop_front_expired(100) == []
    assert bucket.pop_front_n(0) == []
    assert bucket.live_uids() == []


def test_pop_more_than_live_raises():
    bucket = ColorBucket(0)
    bucket.add(J(0, 0, 4))
    with pytest.raises(IndexError):
        bucket.pop_front_n(2)


def test_wrong_color_add_raises():
    bucket = ColorBucket(0)
    with pytest.raises(ValueError):
        bucket.add(J(1, 0, 4))


# -- the remove() KeyError guard (satellite regression tests) ---------------------


class TestRemoveGuard:
    """ColorBucket.remove mirrors PendingPool.remove's KeyError contract."""

    def test_remove_never_added_raises(self):
        bucket = ColorBucket(0)
        stranger = J(0, 0, 4)
        with pytest.raises(KeyError, match="not pending"):
            bucket.remove(stranger)

    def test_double_remove_raises(self):
        bucket = ColorBucket(0)
        a, b = J(0, 0, 4), J(0, 1, 4)
        bucket.add(a)
        bucket.add(b)
        bucket.remove(a)
        with pytest.raises(KeyError, match=f"job {a.uid} is not pending"):
            bucket.remove(a)
        assert len(bucket) == 1  # the failed remove must not corrupt live

    def test_remove_after_pop_raises(self):
        bucket = ColorBucket(0)
        job = J(0, 0, 4)
        bucket.add(job)
        assert bucket.pop_front_n(1) == [job.uid]
        with pytest.raises(KeyError):
            bucket.remove(job)

    def test_remove_after_drop_raises(self):
        bucket = ColorBucket(0)
        job = J(0, 0, 2)
        bucket.add(job)
        assert bucket.drop_front_expired(job.deadline) == [job.uid]
        with pytest.raises(KeyError):
            bucket.remove(job)

    def test_remove_matches_pool_message(self):
        # Same message shape as PendingPool.remove, so callers switching
        # engines see the same diagnostics.
        pool, bucket = PendingPool("x"), ColorBucket("x")
        job = J("x", 0, 4)
        with pytest.raises(KeyError) as pool_err:
            pool.remove(job)
        with pytest.raises(KeyError) as bucket_err:
            bucket.remove(job)
        assert str(pool_err.value) == str(bucket_err.value)

    def test_store_remove_out_of_range_uid(self):
        store = ArrayPendingStore()
        store.add(J(0, 0, 4))
        ghost = J(0, 0, 4)  # fresh uid the store never saw
        with pytest.raises(KeyError):
            store.pool(0).remove(ghost)


# -- store-level parity: idle flips and creation order ----------------------------


@st.composite
def store_script(draw):
    """Interleaved multi-color adds/drops/executes over a few rounds."""
    script = []
    colors = draw(st.integers(1, 3))
    for rnd in range(draw(st.integers(1, 8))):
        adds = [
            (draw(st.integers(0, colors - 1)), rnd,
             draw(st.sampled_from([1, 2, 4])))
            for _ in range(draw(st.integers(0, 4)))
        ]
        script.append((rnd, adds, draw(st.integers(0, colors - 1))))
    return script


@given(script=store_script())
@settings(max_examples=150, deadline=None)
def test_store_matches_pending_store(script):
    ref = PendingStore()
    arr = ArrayPendingStore()
    for rnd, adds, exec_color in script:
        dropped_ref = [j.uid for j in ref.drop_expired(rnd)]
        dropped_arr = [j.uid for j in arr.drop_expired(rnd)]
        assert dropped_arr == dropped_ref
        for color, arrival, bound in adds:
            job = J(color, arrival, bound)
            clone = Job(
                color=color, arrival=arrival, delay_bound=bound, uid=job.uid
            )
            ref.add(job)
            arr.add(clone)
        got_ref = ref.execute_one(exec_color)
        got_arr = arr.execute_one(exec_color)
        assert (got_arr.uid if got_arr else None) == (
            got_ref.uid if got_ref else None
        )
        assert arr.nonidle_colors() == ref.nonidle_colors()
        assert arr.take_idle_flips() == ref.take_idle_flips()
        assert arr.pending_count() == ref.pending_count()
    assert [j.uid for j in arr.all_pending()] == [
        j.uid for j in ref.all_pending()
    ]
