"""Differential testing: branch-and-bound optimum vs brute-force oracle.

The two solvers share no code — :mod:`repro.offline.optimal` works on
multiset states with memoization and feasibility pruning; the oracle
enumerates raw per-resource choices.  Agreement on arbitrary micro
instances is the strongest correctness evidence the exact solver has.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.offline.brute import brute_force_cost
from repro.offline.optimal import optimal_cost

from tests.conftest import jobs_strategy

micro_jobs = jobs_strategy(
    max_jobs=6, max_colors=2, max_round=3,
    bounds=st.sampled_from([1, 2]), batched=False,
)


@given(jobs=micro_jobs, delta=st.integers(1, 3), m=st.integers(1, 2))
@settings(max_examples=60, deadline=None)
def test_optimal_matches_brute_force(jobs, delta, m):
    instance = Instance(RequestSequence(jobs), delta)
    assert optimal_cost(instance, m) == brute_force_cost(instance, m)


@given(jobs=jobs_strategy(max_jobs=5, max_colors=3, max_round=2,
                          bounds=st.sampled_from([1, 2]), batched=False),
       delta=st.integers(1, 2))
@settings(max_examples=40, deadline=None)
def test_optimal_matches_brute_force_three_colors(jobs, delta):
    instance = Instance(RequestSequence(jobs), delta)
    assert optimal_cost(instance, 1) == brute_force_cost(instance, 1)


class TestBruteForceDirect:
    def test_empty(self):
        assert brute_force_cost(Instance(RequestSequence([]), 1), 1) == 0

    def test_single_job(self):
        inst = Instance(RequestSequence([Job(color=0, arrival=0, delay_bound=2)]), 3)
        assert brute_force_cost(inst, 1) == 1  # drop beats a Delta=3 reconfig

    def test_reconfigure_when_worth_it(self):
        jobs = [Job(color=0, arrival=0, delay_bound=4) for _ in range(4)]
        inst = Instance(RequestSequence(jobs), 2)
        assert brute_force_cost(inst, 1) == 2

    def test_refuses_large_search_space(self):
        jobs = [Job(color=c, arrival=r, delay_bound=2)
                for r in range(10) for c in range(4)]
        inst = Instance(RequestSequence(jobs), 1)
        with pytest.raises(ValueError, match="search space"):
            brute_force_cost(inst, 3)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            brute_force_cost(Instance(RequestSequence([]), 1), 0)
