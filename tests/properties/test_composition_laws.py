"""Algebraic laws of the reduction layer.

The reductions compose; these laws pin down the intended semantics:

- Distribute is idempotent up to relabeling: applied to an already
  rate-limited sequence, every batch fits in sub-color 0, so job windows,
  counts and per-batch structure are unchanged;
- applying VarBatch twice still yields windows nested in the originals
  (each application halves the effective bound);
- Distribute after VarBatch is exactly the pipeline's inner instance.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.request import Instance, RequestSequence
from repro.reductions.distribute import distribute_sequence
from repro.reductions.varbatch import varbatch_sequence

from tests.conftest import any_bounds, jobs_strategy

rate_limited_jobs = jobs_strategy(
    max_jobs=25, max_colors=4, max_round=16, batched=True, rate_limited=True
)
general_jobs = jobs_strategy(
    max_jobs=20, max_colors=3, max_round=12, bounds=any_bounds
)


@given(jobs=rate_limited_jobs)
@settings(max_examples=80, deadline=None)
def test_distribute_on_rate_limited_only_uses_subcolor_zero(jobs):
    seq = RequestSequence(jobs)
    split = distribute_sequence(seq)
    assert all(color[1] == 0 for color in split.colors())


@given(jobs=rate_limited_jobs)
@settings(max_examples=60, deadline=None)
def test_distribute_idempotent_up_to_relabeling(jobs):
    seq = RequestSequence(jobs)
    once = distribute_sequence(seq)
    twice = distribute_sequence(once)
    shape = lambda s: Counter(
        (job.arrival, job.delay_bound) for job in s.jobs()
    )
    assert shape(once) == shape(twice)
    # Second application only wraps colors one level deeper.
    assert all(color[1] == 0 for color in twice.colors())


@given(jobs=general_jobs)
@settings(max_examples=60, deadline=None)
def test_varbatch_twice_still_nested_in_original(jobs):
    """Origins flatten to the native job, and windows keep nesting."""
    seq = RequestSequence(jobs)
    twice = varbatch_sequence(varbatch_sequence(seq))
    originals = {job.uid: job for job in seq.jobs()}
    for job in twice.jobs():
        native = originals[job.origin]  # chains flatten to the native uid
        assert native.arrival <= job.arrival
        assert job.deadline <= native.deadline


@given(jobs=general_jobs, delta=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_pipeline_inner_instance_is_varbatch_then_distribute(jobs, delta):
    from repro.reductions.pipeline import solve_online

    instance = Instance(RequestSequence(jobs), delta)
    res = solve_online(instance, n=4, record_events=False)
    manual = distribute_sequence(varbatch_sequence(instance.sequence))
    inner = res.inner.instance.sequence
    shape = lambda s: Counter(
        (job.color, job.arrival, job.delay_bound) for job in s.jobs()
    )
    assert shape(manual) == shape(inner)


@given(jobs=general_jobs)
@settings(max_examples=60, deadline=None)
def test_varbatch_output_is_valid_distribute_input(jobs):
    """VarBatch's output always satisfies Distribute's precondition."""
    seq = varbatch_sequence(RequestSequence(jobs))
    distribute_sequence(seq)  # must not raise


@given(jobs=rate_limited_jobs)
@settings(max_examples=60, deadline=None)
def test_origin_chains_are_flat(jobs):
    """Origins always point at native jobs, never at intermediate ones."""
    seq = RequestSequence(jobs)
    native_uids = {job.uid for job in seq.jobs()}
    layered = distribute_sequence(varbatch_sequence(seq))
    for job in layered.jobs():
        assert job.origin in native_uids
