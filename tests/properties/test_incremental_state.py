"""Property tests: incremental hot-path state vs brute-force recomputation.

The incremental engine relies on three maintained structures being exact:

* ``ResourceBank`` keeps a persistent color -> sorted-locations index and a
  sorted black list, and diffs desired multisets against that index.  The
  original full-scan diff survives as ``incremental=False``; the two must
  produce identical change lists on identical inputs, and the index must
  always equal a brute-force recomputation from the assignment.
* ``PendingStore`` keeps a cached nonidle-color set plus an idle-flip feed
  instead of rescanning pools; the set must always equal the brute-force
  "which pools are non-empty" answer, and the feed must cover every color
  whose idleness actually changed.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import BLACK, Job
from repro.core.pending import PendingStore
from repro.core.resources import ResourceBank

COLORS = list(range(5))


@st.composite
def desired_multisets(draw, n):
    """A sequence of desired color multisets, each fitting in ``n`` slots."""
    rounds = draw(st.integers(1, 12))
    out = []
    for _ in range(rounds):
        size = draw(st.integers(0, n))
        out.append(
            draw(
                st.lists(
                    st.sampled_from(COLORS), min_size=size, max_size=size
                )
            )
        )
    return out


def _brute_force_index(bank):
    """Recompute the location index and black list from the assignment."""
    locs: dict = {}
    black = []
    for loc, color in enumerate(bank.assignment()):
        if color is BLACK:
            black.append(loc)
        else:
            locs.setdefault(color, []).append(loc)
    return locs, black


@given(n=st.integers(1, 9), rounds=st.data())
@settings(max_examples=200, deadline=None)
def test_bank_incremental_diff_matches_scan(n, rounds):
    multisets = rounds.draw(desired_multisets(n))
    inc = ResourceBank(n, incremental=True)
    ref = ResourceBank(n, incremental=False)
    for rnd, desired in enumerate(multisets):
        # Identical change lists in identical order — this is the bit-identity
        # contract the simulator's event log and ledger depend on.
        assert inc.reconfigure_to(list(desired), rnd) == ref.reconfigure_to(
            list(desired), rnd
        )
        assert inc.assignment() == ref.assignment()
        locs, black = _brute_force_index(inc)
        assert inc._locs == locs
        assert inc._black == black
        assert inc.configured_colors() == Counter(
            c for c in inc.assignment() if c is not BLACK
        )


@given(n=st.integers(1, 9), rounds=st.data())
@settings(max_examples=100, deadline=None)
def test_bank_resubmitting_same_list_is_noop(n, rounds):
    multisets = rounds.draw(desired_multisets(n))
    bank = ResourceBank(n, incremental=True)
    for rnd, desired in enumerate(multisets):
        bank.reconfigure_to(desired, rnd)
        before = bank.assignment()
        # The no-op fast path must fire for both the identical object and an
        # equal copy, and must never mutate the bank.
        assert bank.reconfigure_to(desired, rnd) == []
        assert bank.reconfigure_to(list(desired), rnd) == []
        assert bank.assignment() == before


@st.composite
def store_operations(draw):
    ops = []
    for _ in range(draw(st.integers(0, 50))):
        op = draw(st.sampled_from(["add", "add", "execute", "drop"]))
        color = draw(st.sampled_from(COLORS))
        if op == "add":
            arrival = draw(st.integers(0, 20))
            bound = draw(st.sampled_from([1, 2, 4, 8]))
            ops.append(("add", color, (arrival, bound)))
        elif op == "execute":
            ops.append(("execute", color, None))
        else:
            ops.append(("drop", None, draw(st.integers(0, 30))))
    return ops


def _brute_force_nonidle(store):
    return {
        color
        for color, pool in store._pools.items()
        if pool.pending_jobs()
    }


@given(ops=store_operations())
@settings(max_examples=200, deadline=None)
def test_store_nonidle_set_matches_brute_force(ops):
    store = PendingStore()
    store.take_idle_flips()
    prev_nonidle = set()
    for op, color, arg in ops:
        if op == "add":
            arrival, bound = arg
            store.add(Job(color=color, arrival=arrival, delay_bound=bound))
        elif op == "execute":
            store.execute_one(color)
        else:
            store.drop_expired(arg)

        nonidle = _brute_force_nonidle(store)
        assert store.nonidle_set() == nonidle
        assert set(store.nonidle_colors()) == nonidle
        for c in COLORS:
            assert store.idle(c) == (c not in nonidle)

        flips = store.take_idle_flips()
        # Every real idleness transition must be in the feed (transient
        # flips that net out within one op may also appear — that is fine,
        # consumers re-read the authoritative idle() state).
        assert (nonidle ^ prev_nonidle) <= flips
        prev_nonidle = nonidle
    assert store.take_idle_flips() == set()
