"""Metamorphic invariance properties.

- The exact optimum is invariant under color relabeling (permuting color
  identities cannot change the optimal cost — a strong sanity check that no
  component leaks identity-dependent behavior into *costs*).
- The whole simulation stack is deterministic: running the same policy on
  the same instance twice yields byte-identical schedules (guards against
  hidden set/dict iteration-order dependence).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.core.simulator import simulate
from repro.offline.optimal import optimal_cost
from repro.policies.dlru_edf import DeltaLRUEDFPolicy
from repro.reductions.pipeline import solve_online

from tests.conftest import jobs_strategy

tiny_jobs = jobs_strategy(max_jobs=10, max_colors=3, max_round=8, batched=True)
general_jobs = jobs_strategy(max_jobs=20, max_colors=4, max_round=12)


@given(jobs=tiny_jobs, delta=st.integers(1, 3), offset=st.integers(1, 5))
@settings(max_examples=30, deadline=None)
def test_optimal_cost_invariant_under_color_relabeling(jobs, delta, offset):
    instance = Instance(RequestSequence(jobs), delta)
    relabeled = Instance(
        RequestSequence([
            Job(color=job.color + offset, arrival=job.arrival,
                delay_bound=job.delay_bound)
            for job in instance.sequence.jobs()
        ]),
        delta,
    )
    assert optimal_cost(instance, 1) == optimal_cost(relabeled, 1)


@given(jobs=tiny_jobs, delta=st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_optimal_cost_invariant_under_color_reversal(jobs, delta):
    """Reversing the color order is harsher than shifting: tie-breaking
    flips everywhere, yet the optimal *cost* must not move."""
    instance = Instance(RequestSequence(jobs), delta)
    top = max((job.color for job in instance.sequence.jobs()), default=0)
    reversed_inst = Instance(
        RequestSequence([
            Job(color=top - job.color, arrival=job.arrival,
                delay_bound=job.delay_bound)
            for job in instance.sequence.jobs()
        ]),
        delta,
    )
    assert optimal_cost(instance, 1) == optimal_cost(reversed_inst, 1)


@given(jobs=general_jobs, delta=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_simulation_is_deterministic(jobs, delta):
    instance = Instance(RequestSequence(jobs), delta)
    a = simulate(instance, DeltaLRUEDFPolicy(delta), n=4)
    b = simulate(instance, DeltaLRUEDFPolicy(delta), n=4)
    assert a.schedule.reconfigs == b.schedule.reconfigs
    assert a.schedule.executions == b.schedule.executions
    assert a.total_cost == b.total_cost


@given(jobs=general_jobs, delta=st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_pipeline_is_deterministic(jobs, delta):
    instance = Instance(RequestSequence(jobs), delta)
    a = solve_online(instance, n=4, record_events=False)
    b = solve_online(instance, n=4, record_events=False)
    assert a.total_cost == b.total_cost
    assert a.schedule.executed_uids() == b.schedule.executed_uids()
