"""Property-based tests for the Aggregate and punctualization constructions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.request import Instance, RequestSequence
from repro.core.schedule import validate_schedule
from repro.offline.aggregate import aggregate_schedule
from repro.offline.optimal import optimal_schedule
from repro.offline.punctual import classify_execution, punctualize
from repro.reductions.distribute import distribute_sequence

from tests.conftest import jobs_strategy

tiny_batched = jobs_strategy(max_jobs=10, max_colors=3, max_round=8, batched=True)
tiny_general = jobs_strategy(
    max_jobs=10, max_colors=3, max_round=8,
    bounds=st.sampled_from([2, 4, 8]),
)


@given(jobs=tiny_batched, delta=st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_aggregate_lemma_41_on_opt_schedules(jobs, delta):
    """Aggregate(OPT): valid for the split instance, same executions,
    bounded reconfiguration blow-up (Lemmas 4.3, 4.5, 4.6)."""
    sequence = RequestSequence(jobs)
    instance = Instance(sequence, delta)
    opt = optimal_schedule(instance, m=1)
    split = distribute_sequence(sequence)
    result = aggregate_schedule(opt.schedule, sequence, split)
    validate_schedule(result.schedule, split, delta)
    assert len(result.schedule.executed_uids()) == len(opt.schedule.executed_uids())
    base = max(opt.schedule.reconfig_count(), 1)
    assert result.schedule.reconfig_count() <= 8 * base


@given(jobs=tiny_general, delta=st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_punctualize_lemma_53_on_opt_schedules(jobs, delta):
    """punctualize(OPT): valid, punctual, same executions, 7 resources,
    bounded reconfiguration blow-up (Lemma 5.3)."""
    sequence = RequestSequence(jobs)
    instance = Instance(sequence, delta)
    opt = optimal_schedule(instance, m=1)
    out = punctualize(opt.schedule, sequence)
    validate_schedule(out, sequence, delta)
    assert out.n == 7
    assert out.executed_uids() == opt.schedule.executed_uids()
    jobs_by_uid = {j.uid: j for j in sequence.jobs()}
    for ex in out.executions:
        assert classify_execution(jobs_by_uid[ex.uid], ex.round) == "punctual"
    base = max(opt.schedule.reconfig_count(), 1)
    assert out.reconfig_count() <= 12 * base


@given(jobs=tiny_batched, delta=st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_aggregate_on_heuristic_schedules(jobs, delta):
    """Aggregate must handle *any* valid schedule, not just optimal ones —
    here the window planner's (different reconfiguration structure)."""
    from repro.offline.heuristic import window_planner_schedule

    sequence = RequestSequence(jobs)
    instance = Instance(sequence, delta)
    t = window_planner_schedule(instance, m=2, window=4)
    split = distribute_sequence(sequence)
    result = aggregate_schedule(t, sequence, split)
    validate_schedule(result.schedule, split, delta)
    assert len(result.schedule.executed_uids()) == len(t.executed_uids())
