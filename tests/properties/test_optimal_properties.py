"""Property-based tests for the exact offline solver and its bounds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.request import Instance, RequestSequence
from repro.core.schedule import validate_schedule
from repro.core.simulator import simulate
from repro.offline.bounds import opt_lower_bound
from repro.offline.heuristic import window_planner_cost
from repro.offline.optimal import optimal_cost, optimal_schedule
from repro.policies.baselines import GreedyUtilizationPolicy, StaticPartitionPolicy
from repro.policies.dlru_edf import DeltaLRUEDFPolicy

from tests.conftest import jobs_strategy

# The exact solver is exponential; keep instances tiny.
tiny_jobs = jobs_strategy(max_jobs=10, max_colors=3, max_round=8, batched=True)


@given(jobs=tiny_jobs, delta=st.integers(1, 3), m=st.integers(1, 2))
@settings(max_examples=40, deadline=None)
def test_optimal_schedule_achieves_optimal_cost(jobs, delta, m):
    instance = Instance(RequestSequence(jobs), delta)
    result = optimal_schedule(instance, m)
    led = validate_schedule(result.schedule, instance.sequence, delta)
    assert led.total_cost == result.cost


@given(jobs=tiny_jobs, delta=st.integers(1, 3), m=st.integers(1, 2))
@settings(max_examples=40, deadline=None)
def test_lower_bound_sound(jobs, delta, m):
    instance = Instance(RequestSequence(jobs), delta)
    assert opt_lower_bound(instance, m) <= optimal_cost(instance, m)


@given(jobs=tiny_jobs, delta=st.integers(1, 3), m=st.integers(1, 2))
@settings(max_examples=30, deadline=None)
def test_heuristic_upper_bounds_opt(jobs, delta, m):
    instance = Instance(RequestSequence(jobs), delta)
    assert window_planner_cost(instance, m) >= optimal_cost(instance, m)


@given(jobs=tiny_jobs, delta=st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_no_online_policy_beats_opt_at_equal_resources(jobs, delta):
    """OPT(m) <= cost of any online policy given the same m resources."""
    instance = Instance(RequestSequence(jobs), delta)
    m = 4
    opt = optimal_cost(instance, m)
    for policy in (
        DeltaLRUEDFPolicy(delta),
        StaticPartitionPolicy(),
        GreedyUtilizationPolicy(),
    ):
        run = simulate(instance, policy, n=m, record_events=False)
        assert opt <= run.total_cost


@given(jobs=tiny_jobs, delta=st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_optimal_monotone_in_resources(jobs, delta):
    instance = Instance(RequestSequence(jobs), delta)
    assert optimal_cost(instance, 2) <= optimal_cost(instance, 1)


@given(jobs=tiny_jobs)
@settings(max_examples=30, deadline=None)
def test_optimal_monotone_in_delta(jobs):
    instance_cheap = Instance(RequestSequence(jobs), 1)
    instance_dear = Instance(RequestSequence(jobs), 3)
    assert optimal_cost(instance_cheap, 1) <= optimal_cost(instance_dear, 1)


@given(jobs=tiny_jobs, delta=st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_optimal_at_most_drop_everything(jobs, delta):
    instance = Instance(RequestSequence(jobs), delta)
    assert optimal_cost(instance, 1) <= instance.sequence.num_jobs
