"""Model-based tests: PendingPool against a naive sorted-list model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import Job
from repro.core.pending import PendingPool


@st.composite
def operations(draw):
    """A list of (op, arg) operations on one pool."""
    ops = []
    for _ in range(draw(st.integers(0, 40))):
        op = draw(st.sampled_from(["add", "pop", "peek", "drop", "remove"]))
        if op == "add":
            arrival = draw(st.integers(0, 20))
            bound = draw(st.sampled_from([1, 2, 4, 8]))
            ops.append(("add", (arrival, bound)))
        elif op == "drop":
            ops.append(("drop", draw(st.integers(0, 30))))
        else:
            ops.append((op, None))
    return ops


@given(ops=operations())
@settings(max_examples=200, deadline=None)
def test_pool_matches_sorted_list_model(ops):
    pool = PendingPool(0)
    model: list[Job] = []

    for op, arg in ops:
        if op == "add":
            arrival, bound = arg
            job = Job(color=0, arrival=arrival, delay_bound=bound)
            pool.add(job)
            model.append(job)
            model.sort(key=Job.sort_key)
        elif op == "pop":
            if model:
                expected = model.pop(0)
                assert pool.pop().uid == expected.uid
            else:
                assert pool.idle
        elif op == "peek":
            if model:
                assert pool.peek().uid == model[0].uid
            else:
                assert pool.peek() is None
        elif op == "remove":
            if model:
                victim = model.pop(len(model) // 2)
                pool.remove(victim)
        elif op == "drop":
            rnd = arg
            expected = sorted(
                (j for j in model if j.deadline <= rnd), key=Job.sort_key
            )
            model = [j for j in model if j.deadline > rnd]
            dropped = pool.drop_expired(rnd)
            assert sorted(j.uid for j in dropped) == sorted(j.uid for j in expected)

        assert len(pool) == len(model)
        assert pool.idle == (not model)

    snapshot = pool.pending_jobs()
    assert [j.uid for j in snapshot] == [j.uid for j in model]
