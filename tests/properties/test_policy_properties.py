"""Property-based tests for the paper's lemma-level invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.request import Instance, RequestSequence
from repro.core.simulator import simulate
from repro.policies.dlru_edf import DeltaLRUEDFPolicy
from repro.policies.edf import SeqEDFPolicy
from repro.policies.par_edf import par_edf_run

from tests.conftest import jobs_strategy

batched_jobs = jobs_strategy(max_jobs=25, max_colors=4, max_round=16, batched=True)
# The Section-3 setting: batched AND at most D_l jobs per batch.  The
# analysis lemmas (3.8, 3.10, Corollary 3.1) are proved only here.
rate_limited_jobs = jobs_strategy(
    max_jobs=25, max_colors=4, max_round=16, batched=True, rate_limited=True
)


@given(jobs=batched_jobs, delta=st.integers(1, 4))
@settings(max_examples=80, deadline=None)
def test_lemma_33_reconfig_bound(jobs, delta):
    """ReconfigCost <= 4 * numEpochs * Delta, on every batched input."""
    instance = Instance(RequestSequence(jobs), delta)
    policy = DeltaLRUEDFPolicy(delta)
    run = simulate(instance, policy, n=4, record_events=False)
    assert run.ledger.reconfig_cost <= 4 * policy.num_epochs * delta


@given(jobs=batched_jobs, delta=st.integers(1, 4))
@settings(max_examples=80, deadline=None)
def test_lemma_34_ineligible_drop_bound(jobs, delta):
    """IneligibleDropCost <= numEpochs * Delta, on every batched input."""
    instance = Instance(RequestSequence(jobs), delta)
    policy = DeltaLRUEDFPolicy(delta)
    simulate(instance, policy, n=4, record_events=False)
    assert policy.ineligible_drops <= policy.num_epochs * delta


@given(jobs=batched_jobs, delta=st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_lemma_31_small_colors(jobs, delta):
    """Colors with < Delta jobs are never configured by DeltaLRU-EDF."""
    sequence = RequestSequence(jobs)
    counts = sequence.jobs_per_color()
    instance = Instance(sequence, delta)
    run = simulate(instance, DeltaLRUEDFPolicy(delta), n=4, record_events=False)
    for color, count in counts.items():
        if count < delta:
            assert run.ledger.reconfigs_per_color[color] == 0


@given(jobs=batched_jobs, m=st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_par_edf_is_a_drop_floor(jobs, m):
    """Lemma 3.7: no m-resource schedule drops less than Par-EDF(m)."""
    sequence = RequestSequence(jobs)
    instance = Instance(sequence, 1)
    floor = par_edf_run(sequence, m).drop_count
    run = simulate(instance, DeltaLRUEDFPolicy(1), n=4 * m, record_events=False)
    # With 4x the resources the policy may drop less than the m-floor; the
    # floor applies at equal resources:
    equal = simulate(
        instance, SeqEDFPolicy(1, gate_eligibility=False), n=m, record_events=False
    )
    assert floor <= equal.drop_cost


@given(jobs=rate_limited_jobs, delta=st.integers(1, 3), m=st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_corollary_31_ds_seq_edf_vs_par_edf(jobs, delta, m):
    """Corollary 3.1: DS-Seq-EDF (ungated) drops at most Par-EDF — proved
    for rate-limited batched input with power-of-two bounds (Lemma 3.8
    needs each batch to fit in one block: |X| <= p)."""
    sequence = RequestSequence(jobs)
    instance = Instance(sequence, delta)
    ds = simulate(
        instance, SeqEDFPolicy(delta, gate_eligibility=False),
        n=m, speed=2, record_events=False,
    )
    par = par_edf_run(sequence, m)
    assert ds.drop_cost <= par.drop_count


@given(jobs=rate_limited_jobs, delta=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_lemma_310_drop_chain(jobs, delta):
    """EligibleDrops(DeltaLRU-EDF, n) <= Drops(DS-Seq-EDF ungated, n/8)
    on the eligible subsequence.

    The paper's Lemma 3.10 states "n = 4m, i.e., 2m = n/4" — the two clauses
    conflict; the reading consistent with Theorem 1's ``n = 8m`` (and the
    only one under which the coupling argument goes through: the EDF half
    holds ``n/4 = 2m`` distinct colors, matching DS-Seq-EDF's up-to-``2m``
    colors per round) is ``m = n/8``, which is what we verify.
    """
    sequence = RequestSequence(jobs)
    instance = Instance(sequence, delta)
    n = 8
    policy = DeltaLRUEDFPolicy(delta)
    run = simulate(instance, policy, n=n, record_events=False)
    ineligible = policy.state.ineligible_drop_uids()
    eligible_drops = run.drop_cost - len(ineligible)
    alpha = RequestSequence(
        [job for job in sequence.jobs() if job.uid not in ineligible],
        horizon=sequence.horizon,
    )
    ds = simulate(
        Instance(alpha, delta),
        SeqEDFPolicy(delta, gate_eligibility=False),
        n=n // 8, speed=2, record_events=False,
    )
    assert eligible_drops <= ds.drop_cost


@given(jobs=batched_jobs, delta=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_more_resources_never_increase_drops(jobs, delta):
    instance = Instance(RequestSequence(jobs), delta)
    small = simulate(instance, DeltaLRUEDFPolicy(delta), n=4, record_events=False)
    large = simulate(instance, DeltaLRUEDFPolicy(delta), n=8, record_events=False)
    assert large.drop_cost <= small.drop_cost + delta * 4  # slack: cache churn


@given(jobs=rate_limited_jobs, delta=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_corollary_32_epoch_overlap(jobs, delta):
    """Corollary 3.2: at most three epochs of any color overlap any
    super-epoch (m = n/8)."""
    from repro.analysis.epochs import max_epoch_overlap

    instance = Instance(RequestSequence(jobs), delta)
    policy = DeltaLRUEDFPolicy(delta, track_history=True)
    simulate(instance, policy, n=8, record_events=False)
    assert max_epoch_overlap(policy.state, m=1, horizon=instance.horizon) <= 3
