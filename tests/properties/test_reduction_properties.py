"""Property-based tests for the Distribute and VarBatch reductions."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.request import Instance, RequestSequence
from repro.core.schedule import validate_schedule
from repro.reductions.blocks import batch_period
from repro.reductions.distribute import distribute_sequence
from repro.reductions.pipeline import solve_batched, solve_online
from repro.reductions.varbatch import varbatch_sequence

from tests.conftest import any_bounds, jobs_strategy


@given(jobs=jobs_strategy(max_jobs=30, max_colors=4, max_round=16, batched=True))
@settings(max_examples=100, deadline=None)
def test_distribute_output_is_rate_limited(jobs):
    split = distribute_sequence(RequestSequence(jobs))
    assert split.is_rate_limited()


@given(jobs=jobs_strategy(max_jobs=30, max_colors=4, max_round=16, batched=True))
@settings(max_examples=100, deadline=None)
def test_distribute_is_a_bijection_on_jobs(jobs):
    seq = RequestSequence(jobs)
    split = distribute_sequence(seq)
    assert split.num_jobs == seq.num_jobs
    origins = [job.origin for job in split.jobs()]
    assert len(set(origins)) == len(origins)
    assert set(origins) == {job.uid for job in seq.jobs()}


@given(jobs=jobs_strategy(max_jobs=30, max_colors=4, max_round=16, batched=True))
@settings(max_examples=100, deadline=None)
def test_distribute_preserves_windows_and_parent_colors(jobs):
    seq = RequestSequence(jobs)
    originals = {job.uid: job for job in seq.jobs()}
    for derived in distribute_sequence(seq).jobs():
        native = originals[derived.origin]
        assert derived.arrival == native.arrival
        assert derived.delay_bound == native.delay_bound
        assert derived.color[0] == native.color


@given(jobs=jobs_strategy(max_jobs=25, max_colors=4, max_round=16, bounds=any_bounds))
@settings(max_examples=100, deadline=None)
def test_varbatch_output_is_batched_and_nested(jobs):
    seq = RequestSequence(jobs)
    out = varbatch_sequence(seq)
    assert out.is_batched()
    originals = {job.uid: job for job in seq.jobs()}
    for derived in out.jobs():
        native = originals[derived.origin]
        assert native.arrival <= derived.arrival
        assert derived.deadline <= native.deadline
        assert derived.color == native.color
        if native.delay_bound > 1:
            assert derived.delay_bound == batch_period(native.delay_bound)


@given(jobs=jobs_strategy(max_jobs=25, max_colors=4, max_round=16, bounds=any_bounds))
@settings(max_examples=100, deadline=None)
def test_varbatch_preserves_multiplicities_per_color(jobs):
    seq = RequestSequence(jobs)
    out = varbatch_sequence(seq)
    assert Counter(j.color for j in seq.jobs()) == Counter(j.color for j in out.jobs())


@given(
    jobs=jobs_strategy(max_jobs=20, max_colors=3, max_round=12, batched=True),
    delta=st.integers(1, 3),
)
@settings(max_examples=50, deadline=None)
def test_solve_batched_schedule_valid_on_original(jobs, delta):
    instance = Instance(RequestSequence(jobs), delta)
    res = solve_batched(instance, n=4)
    led = validate_schedule(res.schedule, instance.sequence, delta)
    assert led.total_cost == res.total_cost


@given(
    jobs=jobs_strategy(max_jobs=20, max_colors=3, max_round=12, bounds=any_bounds),
    delta=st.integers(1, 3),
)
@settings(max_examples=50, deadline=None)
def test_solve_online_schedule_valid_on_original(jobs, delta):
    instance = Instance(RequestSequence(jobs), delta)
    res = solve_online(instance, n=4)
    led = validate_schedule(res.schedule, instance.sequence, delta)
    assert led.total_cost == res.total_cost


@given(
    jobs=jobs_strategy(max_jobs=20, max_colors=3, max_round=12, batched=True),
    delta=st.integers(1, 3),
)
@settings(max_examples=50, deadline=None)
def test_pull_back_never_increases_cost(jobs, delta):
    """Lemma 4.2: the pulled-back schedule costs at most the inner one."""
    instance = Instance(RequestSequence(jobs), delta)
    res = solve_batched(instance, n=4)
    inner_cost = res.inner.ledger.total_cost
    assert res.total_cost <= inner_cost
