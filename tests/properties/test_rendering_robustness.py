"""Fuzz the human-output paths: rendering must never crash.

Timelines, narration, tables, verification reports and attribution are the
bug-report surface — they must work on *any* run, including empty, degenerate
and double-speed ones.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.attribution import attribution_table
from repro.analysis.series import cost_series, sparkline
from repro.analysis.timeline import render_timeline, timeline_stats
from repro.analysis.verify import verify_run
from repro.core.debug import narrate
from repro.core.request import Instance, RequestSequence
from repro.core.simulator import simulate
from repro.policies.dlru_edf import DeltaLRUEDFPolicy
from repro.policies.edf import SeqEDFPolicy

from tests.conftest import jobs_strategy

arbitrary_jobs = jobs_strategy(max_jobs=15, max_colors=5, max_round=10)


@given(jobs=arbitrary_jobs, delta=st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_all_renderers_survive_any_run(jobs, delta):
    instance = Instance(RequestSequence(jobs), delta)
    run = simulate(instance, DeltaLRUEDFPolicy(delta), n=4)

    assert isinstance(render_timeline(run.schedule, instance.sequence), str)
    stats = timeline_stats(run.schedule, instance.sequence)
    assert 0.0 <= stats.utilization <= 1.0

    assert isinstance(narrate(run), str)

    series = cost_series(run.ledger, instance.horizon)
    assert isinstance(sparkline(series.total), str)

    if instance.sequence.num_jobs:
        text = attribution_table(run.schedule, instance).render()
        assert "color" in text

    report = verify_run(run)
    assert report.ok, report.render()


@given(jobs=arbitrary_jobs, delta=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_renderers_survive_double_speed_runs(jobs, delta):
    instance = Instance(RequestSequence(jobs), delta)
    run = simulate(
        instance, SeqEDFPolicy(delta, gate_eligibility=False), n=3, speed=2
    )
    assert isinstance(render_timeline(run.schedule, instance.sequence), str)
    assert isinstance(narrate(run), str)
    assert verify_run(run).ok


@given(start=st.integers(0, 50), width=st.integers(1, 200))
@settings(max_examples=40, deadline=None)
def test_timeline_windows_never_crash(start, width):
    instance = Instance(
        RequestSequence([]), 1
    )
    from repro.core.schedule import Schedule

    text = render_timeline(Schedule(n=2), instance.sequence, start,
                           start + width)
    assert isinstance(text, str)
