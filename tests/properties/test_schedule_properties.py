"""Property-based tests: every produced schedule is valid and its cost
matches the producer's ledger, for every policy, on arbitrary inputs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.request import Instance, RequestSequence
from repro.core.schedule import validate_schedule
from repro.core.simulator import simulate
from repro.policies.baselines import (
    ClassicLRUPolicy,
    GreedyUtilizationPolicy,
    StaticPartitionPolicy,
)
from repro.policies.dlru import DeltaLRUPolicy
from repro.policies.dlru_edf import DeltaLRUEDFPolicy
from repro.policies.edf import EDFPolicy, SeqEDFPolicy

from tests.conftest import jobs_strategy


POLICY_FACTORIES = [
    ("dlru", lambda d: DeltaLRUPolicy(d)),
    ("edf", lambda d: EDFPolicy(d)),
    ("dlru-edf", lambda d: DeltaLRUEDFPolicy(d)),
    ("seq-edf", lambda d: SeqEDFPolicy(d)),
    ("static", lambda d: StaticPartitionPolicy()),
    ("classic-lru", lambda d: ClassicLRUPolicy()),
    ("greedy", lambda d: GreedyUtilizationPolicy()),
]


@given(
    jobs=jobs_strategy(max_jobs=25, max_colors=4, max_round=16, batched=True),
    delta=st.integers(1, 4),
    which=st.integers(0, len(POLICY_FACTORIES) - 1),
)
@settings(max_examples=120, deadline=None)
def test_policy_schedules_always_validate(jobs, delta, which):
    name, factory = POLICY_FACTORIES[which]
    instance = Instance(RequestSequence(jobs), delta, name=name)
    run = simulate(instance, factory(delta), n=4)
    led = validate_schedule(run.schedule, instance.sequence, delta)
    assert led.total_cost == run.ledger.total_cost
    assert led.reconfig_cost == run.ledger.reconfig_cost
    assert led.drop_cost == run.ledger.drop_cost


@given(
    jobs=jobs_strategy(max_jobs=20, max_colors=3, max_round=12, batched=True),
    delta=st.integers(1, 3),
)
@settings(max_examples=60, deadline=None)
def test_every_job_is_executed_or_dropped_exactly_once(jobs, delta):
    instance = Instance(RequestSequence(jobs), delta)
    run = simulate(instance, DeltaLRUEDFPolicy(delta), n=4)
    all_uids = {job.uid for job in instance.sequence.jobs()}
    assert run.executed_uids | run.dropped_uids == all_uids
    assert not (run.executed_uids & run.dropped_uids)


@given(
    jobs=jobs_strategy(max_jobs=20, max_colors=3, max_round=12, batched=True),
    delta=st.integers(1, 3),
    speed=st.integers(1, 2),
)
@settings(max_examples=60, deadline=None)
def test_double_speed_schedules_validate(jobs, delta, speed):
    instance = Instance(RequestSequence(jobs), delta)
    run = simulate(instance, SeqEDFPolicy(delta), n=3, speed=speed)
    led = validate_schedule(run.schedule, instance.sequence, delta)
    assert led.total_cost == run.ledger.total_cost


@given(
    jobs=jobs_strategy(max_jobs=20, max_colors=3, max_round=12, batched=True),
    delta=st.integers(1, 3),
)
@settings(max_examples=60, deadline=None)
def test_executions_never_exceed_capacity_per_round(jobs, delta):
    instance = Instance(RequestSequence(jobs), delta)
    n = 4
    run = simulate(instance, DeltaLRUEDFPolicy(delta), n=n)
    per_round: dict[int, int] = {}
    for ex in run.schedule.executions:
        per_round[ex.round] = per_round.get(ex.round, 0) + 1
    assert all(count <= n for count in per_round.values())
