"""Property tests for the deterministic seed-stream derivation.

The parallel runner's reproducibility rests on three properties of
``derive_seed``: it is a pure function of ``(root, path)``, distinct paths
get distinct seeds, and derivation never depends on the order in which
other seeds were derived.  Hypothesis searches for violations.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.seeds import (
    SEED_BITS,
    SeedStream,
    derive_seed,
    replication_seeds,
)

roots = st.integers(min_value=0, max_value=2**63 - 1)
labels = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.text(max_size=12),
)


class TestDeriveSeed:
    @given(roots, st.lists(labels, max_size=4))
    def test_pure_function(self, root, path):
        assert derive_seed(root, *path) == derive_seed(root, *path)

    @given(roots, st.lists(labels, max_size=4))
    def test_range(self, root, path):
        seed = derive_seed(root, *path)
        assert 0 <= seed < 2**SEED_BITS

    @given(roots)
    def test_framing_resists_label_splitting(self, root):
        assert derive_seed(root, "ab", "c") != derive_seed(root, "a", "bc")
        assert derive_seed(root, "ab") != derive_seed(root, "ab", "")

    @given(roots)
    def test_types_are_part_of_the_path(self, root):
        assert derive_seed(root, 1) != derive_seed(root, "1")

    @given(roots, roots)
    def test_distinct_roots_distinct_streams(self, a, b):
        if a != b:
            assert derive_seed(a, "x") != derive_seed(b, "x")


class TestCollisionFreedom:
    @settings(max_examples=25)
    @given(
        roots,
        st.lists(labels, min_size=1, max_size=8, unique=True),
        st.integers(min_value=1, max_value=32),
    )
    def test_experiment_by_replication_grid_collision_free(
        self, root, experiments, count
    ):
        # The exact grid the runner fans out: (experiment label, rep index).
        seeds = [
            seed
            for label in experiments
            for seed in replication_seeds(root, label, count)
        ]
        assert len(set(seeds)) == len(experiments) * count

    @settings(max_examples=25)
    @given(roots, st.integers(min_value=2, max_value=200))
    def test_indices_within_one_stream_collision_free(self, root, count):
        seeds = replication_seeds(root, "study", count)
        assert len(set(seeds)) == count


class TestOrderIndependence:
    @settings(max_examples=25)
    @given(roots, st.integers(min_value=2, max_value=64), st.randoms())
    def test_derivation_order_is_irrelevant(self, root, count, rnd):
        # Deriving seeds in a shuffled order (as completion-order workers
        # would) yields exactly the in-order values.
        stream = SeedStream(root).child("replication", "study")
        indices = list(range(count))
        rnd.shuffle(indices)
        shuffled = {i: stream.seed(i) for i in indices}
        in_order = replication_seeds(root, "study", count)
        assert tuple(shuffled[i] for i in range(count)) == in_order

    @given(roots)
    def test_child_path_equals_direct_derivation(self, root):
        assert SeedStream(root).child("E3").seed(5) == derive_seed(root, "E3", 5)

    @given(roots)
    def test_no_hidden_state_between_calls(self, root):
        stream = SeedStream(root)
        first = stream.seed("a")
        stream.seed("b")
        stream.child("c").seed(0)
        assert stream.seed("a") == first


class TestRngHandoff:
    @given(roots)
    def test_rng_is_seeded_deterministically(self, root):
        a = SeedStream(root).rng("policy")
        b = SeedStream(root).rng("policy")
        assert isinstance(a, random.Random)
        assert [a.random() for _ in range(4)] == [b.random() for _ in range(4)]

    @given(roots)
    def test_sibling_rngs_are_independent_streams(self, root):
        a = SeedStream(root).rng("left")
        b = SeedStream(root).rng("right")
        assert [a.random() for _ in range(4)] != [b.random() for _ in range(4)]
