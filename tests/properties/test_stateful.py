"""Stateful (rule-based) hypothesis machines for the core substrate."""

from collections import Counter

from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.job import BLACK, Job
from repro.core.ledger import CostLedger
from repro.core.pending import PendingStore
from repro.core.resources import ResourceBank

COLORS = ["red", "green", "blue", "gold"]


class ResourceBankMachine(RuleBasedStateMachine):
    """The bank against its behavioral contract.

    Which surplus copies survive a reconfiguration is deliberately
    unspecified (placement detail); the contract is:

    1. every wanted copy is present afterwards (``after >= want``);
    2. the charge is exactly the number of newly-added copies
       (``|want - before|``) — unchanged copies are free;
    3. anything present beyond ``want`` is a leftover from the previous
       state (``after - want <= before``), i.e. the bank never invents
       colors;
    4. the bank never holds more than ``n`` copies.
    """

    def __init__(self):
        super().__init__()
        self.n = 4
        self.bank = ResourceBank(self.n)
        self.ledger = CostLedger(delta=1)
        self.round = 0

    @rule(desired=st.lists(st.sampled_from(COLORS), min_size=0, max_size=4))
    def reconfigure(self, desired):
        want = Counter(desired)
        before = self.bank.configured_colors()
        charged_before = self.ledger.reconfig_count
        self.bank.reconfigure_to(desired, self.round, self.ledger)
        after = self.bank.configured_colors()
        added = sum((want - before).values())
        assert self.ledger.reconfig_count - charged_before == added
        assert not (want - after), "a wanted copy is missing"
        assert not ((after - want) - before), "the bank invented a color"
        self.round += 1

    @invariant()
    def never_more_than_n(self):
        assert sum(self.bank.configured_colors().values()) <= self.n

    @invariant()
    def assignment_consistent_with_counts(self):
        counted = Counter(
            c for c in self.bank.assignment() if c is not BLACK
        )
        assert counted == self.bank.configured_colors()


class PendingStoreMachine(RuleBasedStateMachine):
    """The pending store against a dict-of-lists model."""

    def __init__(self):
        super().__init__()
        self.store = PendingStore()
        self.model: dict = {color: [] for color in range(3)}
        self.clock = 0

    @rule(color=st.integers(0, 2), bound=st.sampled_from([1, 2, 4]))
    def add(self, color, bound):
        job = Job(color=color, arrival=self.clock, delay_bound=bound)
        self.store.add(job)
        self.model[color].append(job)

    @rule(color=st.integers(0, 2))
    def execute(self, color):
        got = self.store.execute_one(color)
        live = [j for j in self.model[color] if j.deadline > self.clock or True]
        if self.model[color]:
            expected = min(self.model[color], key=Job.sort_key)
            assert got is not None and got.uid == expected.uid
            self.model[color].remove(expected)
        else:
            assert got is None

    @rule()
    def advance_and_drop(self):
        self.clock += 1
        dropped = self.store.drop_expired(self.clock)
        expected = {
            j.uid
            for jobs in self.model.values()
            for j in jobs
            if j.deadline <= self.clock
        }
        assert {j.uid for j in dropped} == expected
        for color in self.model:
            self.model[color] = [
                j for j in self.model[color] if j.deadline > self.clock
            ]

    @invariant()
    def counts_agree(self):
        for color in self.model:
            assert self.store.pending_count(color) == len(self.model[color])

    @invariant()
    def idleness_agrees(self):
        for color in self.model:
            assert self.store.idle(color) == (not self.model[color])


TestResourceBankMachine = ResourceBankMachine.TestCase
TestPendingStoreMachine = PendingStoreMachine.TestCase
