"""Metamorphic tests of the schedule validator.

Take a known-valid schedule (produced by DeltaLRU-EDF on a random batched
instance) and apply a corrupting mutation; the validator must reject every
mutated schedule.  This guards the guard: a validator that silently accepts
broken schedules would defeat the whole property-testing strategy.
"""

import copy

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.core.schedule import (
    Execution,
    Reconfiguration,
    Schedule,
    ScheduleError,
    validate_schedule,
)
from repro.core.simulator import simulate
from repro.policies.dlru_edf import DeltaLRUEDFPolicy

from tests.conftest import jobs_strategy


def make_valid(jobs, delta=2, n=4):
    instance = Instance(RequestSequence(jobs), delta)
    run = simulate(instance, DeltaLRUEDFPolicy(delta), n=n)
    return instance, run.schedule


batched = jobs_strategy(max_jobs=20, max_colors=3, max_round=12, batched=True)


@given(jobs=batched, pick=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_duplicated_execution_rejected(jobs, pick):
    instance, schedule = make_valid(jobs)
    assume(schedule.executions)
    victim = schedule.executions[pick % len(schedule.executions)]
    mutated = copy.deepcopy(schedule)
    mutated.executions.append(victim)
    with pytest.raises(ScheduleError):
        validate_schedule(mutated, instance.sequence, instance.delta)


@given(jobs=batched, pick=st.integers(0, 10_000), shift=st.integers(1, 50))
@settings(max_examples=60, deadline=None)
def test_execution_pushed_past_deadline_rejected(jobs, pick, shift):
    instance, schedule = make_valid(jobs)
    assume(schedule.executions)
    jobs_by_uid = {j.uid: j for j in instance.sequence.jobs()}
    victim = schedule.executions[pick % len(schedule.executions)]
    job = jobs_by_uid[victim.uid]
    mutated = copy.deepcopy(schedule)
    mutated.executions.remove(victim)
    mutated.executions.append(
        Execution(job.deadline + shift, victim.mini, victim.location, victim.uid)
    )
    with pytest.raises(ScheduleError):
        validate_schedule(mutated, instance.sequence, instance.delta)


@given(jobs=batched, pick=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_execution_before_arrival_rejected(jobs, pick):
    instance, schedule = make_valid(jobs)
    jobs_by_uid = {j.uid: j for j in instance.sequence.jobs()}
    movable = [
        ex for ex in schedule.executions if jobs_by_uid[ex.uid].arrival > 0
    ]
    assume(movable)
    victim = movable[pick % len(movable)]
    mutated = copy.deepcopy(schedule)
    mutated.executions.remove(victim)
    mutated.executions.append(Execution(0, 0, victim.location, victim.uid))
    # Round 0 is before the job's arrival; the location may also be black or
    # wrongly colored there — either way it must be rejected.
    with pytest.raises(ScheduleError):
        validate_schedule(mutated, instance.sequence, instance.delta)


@given(jobs=batched, pick=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_recolored_location_rejected(jobs, pick):
    """Recoloring a location to a bogus color invalidates executions on it."""
    instance, schedule = make_valid(jobs)
    assume(schedule.executions)
    victim = schedule.executions[pick % len(schedule.executions)]
    mutated = copy.deepcopy(schedule)
    bogus = ("bogus", "color")
    mutated.reconfigs = [
        rc for rc in mutated.reconfigs
        if not (rc.location == victim.location and (rc.round, rc.mini) == (victim.round, victim.mini))
    ]
    mutated.reconfigs.append(
        Reconfiguration(victim.round, victim.mini, victim.location, bogus)
    )
    with pytest.raises(ScheduleError):
        validate_schedule(mutated, instance.sequence, instance.delta)


@given(jobs=batched)
@settings(max_examples=40, deadline=None)
def test_foreign_uid_rejected(jobs):
    instance, schedule = make_valid(jobs)
    mutated = copy.deepcopy(schedule)
    mutated.reconfigs.append(Reconfiguration(0, 0, 0, 0))
    mutated.executions.append(Execution(0, 0, 0, 10**12))
    with pytest.raises(ScheduleError):
        validate_schedule(mutated, instance.sequence, instance.delta)


@given(jobs=batched)
@settings(max_examples=40, deadline=None)
def test_out_of_range_location_rejected(jobs):
    instance, schedule = make_valid(jobs)
    mutated = copy.deepcopy(schedule)
    mutated.reconfigs.append(Reconfiguration(0, 0, mutated.n + 3, 0))
    with pytest.raises(ScheduleError):
        validate_schedule(mutated, instance.sequence, instance.delta)
