"""Unit tests for block / half-block arithmetic."""

import pytest

from repro.reductions.blocks import (
    batch_period,
    block_index,
    block_start,
    half_block_index,
    half_block_start,
    is_power_of_two,
)


class TestPowerOfTwo:
    def test_powers(self):
        assert all(is_power_of_two(1 << e) for e in range(10))

    def test_non_powers(self):
        assert not any(is_power_of_two(v) for v in (0, 3, 5, 6, 7, 9, 12, -4))


class TestBlocks:
    def test_block_start(self):
        assert block_start(4, 0) == 0
        assert block_start(4, 3) == 12

    def test_block_index(self):
        assert block_index(4, 0) == 0
        assert block_index(4, 3) == 0
        assert block_index(4, 4) == 1

    def test_round_trip(self):
        for p in (2, 4, 8):
            for rnd in range(20):
                i = block_index(p, rnd)
                assert block_start(p, i) <= rnd < block_start(p, i + 1)


class TestHalfBlocks:
    def test_half_block_start(self):
        assert half_block_start(8, 0) == 0
        assert half_block_start(8, 3) == 12

    def test_half_block_index(self):
        assert half_block_index(8, 3) == 0
        assert half_block_index(8, 4) == 1

    def test_odd_bound_rejected(self):
        with pytest.raises(ValueError):
            half_block_start(3, 0)
        with pytest.raises(ValueError):
            half_block_index(5, 0)


class TestBatchPeriod:
    def test_power_of_two_halves(self):
        assert batch_period(4) == 2
        assert batch_period(8) == 4
        assert batch_period(64) == 32

    def test_tiny_bounds_clamp_to_one(self):
        assert batch_period(1) == 1
        assert batch_period(2) == 1
        assert batch_period(3) == 1

    def test_non_power_of_two_uses_section_53(self):
        # 2^j <= p < 2^(j+1) -> period 2^(j-2)
        assert batch_period(5) == 1   # j=2
        assert batch_period(9) == 2   # j=3
        assert batch_period(15) == 2
        assert batch_period(17) == 4  # j=4

    def test_safety_margin_two_b_at_most_p(self):
        for p in range(2, 200):
            assert 2 * batch_period(p) <= p

    def test_invalid(self):
        with pytest.raises(ValueError):
            batch_period(0)
