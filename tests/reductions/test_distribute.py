"""Unit tests for Algorithm Distribute (Section 4.1)."""

import pytest

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.core.schedule import Schedule, validate_schedule
from repro.core.simulator import simulate
from repro.policies.dlru_edf import DeltaLRUEDFPolicy
from repro.reductions.distribute import (
    distribute_sequence,
    parent_color,
    pull_back_schedule,
)


def J(color, arrival, bound):
    return Job(color=color, arrival=arrival, delay_bound=bound)


class TestDistributeSequence:
    def test_small_batch_single_subcolor(self):
        seq = RequestSequence([J(0, 0, 4) for _ in range(3)])
        split = distribute_sequence(seq)
        assert {job.color for job in split.jobs()} == {(0, 0)}

    def test_oversized_batch_splits(self):
        seq = RequestSequence([J(0, 0, 2) for _ in range(5)])
        split = distribute_sequence(seq)
        colors = sorted({job.color for job in split.jobs()})
        assert colors == [(0, 0), (0, 1), (0, 2)]
        counts = split.jobs_per_color()
        assert counts[(0, 0)] == 2 and counts[(0, 1)] == 2 and counts[(0, 2)] == 1

    def test_result_is_rate_limited(self):
        jobs = [J(0, 0, 2) for _ in range(7)] + [J(1, 0, 4) for _ in range(9)]
        split = distribute_sequence(RequestSequence(jobs))
        assert split.is_rate_limited()

    def test_preserves_job_count_and_windows(self):
        jobs = [J(c, a, 4) for c in range(2) for a in (0, 4) for _ in range(6)]
        seq = RequestSequence(jobs)
        split = distribute_sequence(seq)
        assert split.num_jobs == seq.num_jobs
        for job in split.jobs():
            assert job.arrival % job.delay_bound == 0
            assert job.delay_bound == 4

    def test_origins_point_to_original_jobs(self):
        seq = RequestSequence([J(0, 0, 2) for _ in range(3)])
        originals = {job.uid for job in seq.jobs()}
        split = distribute_sequence(seq)
        assert {job.origin for job in split.jobs()} == originals

    def test_rejects_unbatched_input(self):
        with pytest.raises(ValueError, match="batched"):
            distribute_sequence(RequestSequence([J(0, 1, 2)]))

    def test_sub_batches_independent_per_round(self):
        jobs = [J(0, 0, 2) for _ in range(5)] + [J(0, 2, 2) for _ in range(3)]
        split = distribute_sequence(RequestSequence(jobs))
        per_batch = {}
        for job in split.jobs():
            per_batch.setdefault((job.color, job.arrival), 0)
            per_batch[(job.color, job.arrival)] += 1
        assert all(count <= 2 for count in per_batch.values())


class TestParentColor:
    def test_extracts_parent(self):
        assert parent_color((7, 3)) == 7

    def test_rejects_plain_color(self):
        with pytest.raises(ValueError):
            parent_color(7)


class TestPullBack:
    def _setup(self):
        jobs = [J(0, 0, 2) for _ in range(5)] + [J(1, 0, 4) for _ in range(3)]
        seq = RequestSequence(jobs)
        split = distribute_sequence(seq)
        return seq, split

    def test_pulled_back_schedule_validates(self):
        seq, split = self._setup()
        inst = Instance(split, delta=2)
        run = simulate(inst, DeltaLRUEDFPolicy(2), n=8)
        pulled = pull_back_schedule(run.schedule, split, seq)
        validate_schedule(pulled, seq, 2)

    def test_drop_cost_preserved(self):
        seq, split = self._setup()
        inst = Instance(split, delta=2)
        run = simulate(inst, DeltaLRUEDFPolicy(2), n=8)
        pulled = pull_back_schedule(run.schedule, split, seq)
        inner_drops = split.num_jobs - len(run.schedule.executed_uids())
        outer_drops = seq.num_jobs - len(pulled.executed_uids())
        assert outer_drops == inner_drops

    def test_reconfig_cost_never_increases(self):
        seq, split = self._setup()
        inst = Instance(split, delta=2)
        run = simulate(inst, DeltaLRUEDFPolicy(2), n=8)
        pulled = pull_back_schedule(run.schedule, split, seq)
        assert pulled.reconfig_count() <= run.schedule.reconfig_count()

    def test_sibling_subcolor_reconfigs_collapse(self):
        """(l, 0) -> (l, 1) on one location becomes a free no-op."""
        seq = RequestSequence([J(0, 0, 2) for _ in range(4)])
        split = distribute_sequence(seq)
        inner = Schedule(n=1)
        inner.add_reconfig(0, 0, (0, 0))
        inner.add_reconfig(1, 0, (0, 1))
        pulled = pull_back_schedule(inner, split, seq)
        assert pulled.reconfig_count() == 1

    def test_rejects_foreign_execution(self):
        seq, split = self._setup()
        inner = Schedule(n=1)
        inner.add_execution(0, 0, 10**9)
        with pytest.raises(ValueError):
            pull_back_schedule(inner, split, seq)
