"""Unit tests for the composed solvers (Theorems 1–3 plumbing)."""

import pytest

from repro.core.schedule import validate_schedule
from repro.policies.dlru_edf import DeltaLRUEDFPolicy
from repro.reductions.pipeline import solve_batched, solve_online, solve_rate_limited
from repro.workloads.generators import (
    batched_workload,
    poisson_workload,
    rate_limited_workload,
)


class TestSolveRateLimited:
    def test_schedule_validates_and_cost_matches(self):
        inst = rate_limited_workload(num_colors=4, horizon=32, delta=2, seed=0)
        res = solve_rate_limited(inst, n=8)
        led = validate_schedule(res.schedule, inst.sequence, inst.delta)
        assert led.total_cost == res.total_cost
        assert res.layers == ("dlru-edf",)

    def test_custom_policy_accepted(self):
        inst = rate_limited_workload(num_colors=4, horizon=32, delta=2, seed=0)
        policy = DeltaLRUEDFPolicy(2, track_history=True)
        res = solve_rate_limited(inst, n=8, policy=policy)
        assert res.policy is policy
        assert policy.state.track_history


class TestSolveBatched:
    def test_schedule_validates_against_original(self):
        inst = batched_workload(num_colors=4, horizon=32, delta=2, seed=1)
        res = solve_batched(inst, n=8)
        led = validate_schedule(res.schedule, inst.sequence, inst.delta)
        assert led.total_cost == res.total_cost
        assert res.layers == ("distribute", "dlru-edf")

    def test_handles_oversized_batches(self):
        inst = batched_workload(
            num_colors=2, horizon=16, delta=2, seed=2, mean_batch=6.0
        )
        assert not inst.sequence.is_rate_limited()
        res = solve_batched(inst, n=8)
        validate_schedule(res.schedule, inst.sequence, inst.delta)

    def test_inner_instance_is_rate_limited(self):
        inst = batched_workload(num_colors=3, horizon=16, delta=2, seed=3)
        res = solve_batched(inst, n=8)
        assert res.inner.instance.sequence.is_rate_limited()


class TestSolveOnline:
    def test_schedule_validates_against_original(self):
        inst = poisson_workload(num_colors=4, horizon=48, delta=2, seed=4)
        res = solve_online(inst, n=8)
        led = validate_schedule(res.schedule, inst.sequence, inst.delta)
        assert led.total_cost == res.total_cost
        assert res.layers == ("varbatch", "distribute", "dlru-edf")

    def test_non_power_of_two_bounds_supported(self):
        inst = poisson_workload(
            num_colors=4, horizon=48, delta=2, seed=5, power_of_two=False
        )
        res = solve_online(inst, n=8)
        validate_schedule(res.schedule, inst.sequence, inst.delta)

    def test_ledger_breakdown_consistent(self):
        inst = poisson_workload(num_colors=3, horizon=32, delta=3, seed=6)
        res = solve_online(inst, n=8)
        assert res.total_cost == res.reconfig_cost + res.drop_cost

    def test_every_executed_job_is_original(self):
        inst = poisson_workload(num_colors=3, horizon=32, delta=2, seed=7)
        res = solve_online(inst, n=8)
        original_uids = {job.uid for job in inst.sequence.jobs()}
        assert res.schedule.executed_uids() <= original_uids

    @pytest.mark.parametrize("n", [8, 16])
    def test_more_resources_never_hurt_much(self, n):
        inst = poisson_workload(num_colors=4, horizon=64, delta=2, seed=8)
        res = solve_online(inst, n=n, record_events=False)
        assert res.total_cost >= 0  # smoke: both sizes complete

    def test_empty_instance(self):
        from repro.core.request import Instance, RequestSequence

        inst = Instance(RequestSequence([]), delta=2)
        res = solve_online(inst, n=8)
        assert res.total_cost == 0
