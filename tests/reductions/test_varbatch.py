"""Unit tests for Algorithm VarBatch (Sections 5.1, 5.3)."""

import pytest

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.core.schedule import validate_schedule
from repro.core.simulator import simulate
from repro.policies.dlru_edf import DeltaLRUEDFPolicy
from repro.reductions.varbatch import pull_back_schedule, varbatch_sequence


def J(color, arrival, bound):
    return Job(color=color, arrival=arrival, delay_bound=bound)


class TestVarbatchSequence:
    def test_delays_to_next_half_block(self):
        seq = RequestSequence([J(0, 1, 8)])  # half-block 0 of period 4
        out = varbatch_sequence(seq)
        job = next(out.jobs())
        assert job.arrival == 4
        assert job.delay_bound == 4

    def test_boundary_arrival_moves_forward(self):
        # Arrival exactly on a boundary still delays one period (the paper
        # delays everything arriving *in* halfBlock(p, i)).
        seq = RequestSequence([J(0, 4, 8)])
        out = varbatch_sequence(seq)
        assert next(out.jobs()).arrival == 8

    def test_result_is_batched(self):
        jobs = [J(0, a, 8) for a in (0, 1, 5, 9)] + [J(1, 3, 4)]
        out = varbatch_sequence(RequestSequence(jobs))
        assert out.is_batched()

    def test_derived_window_inside_original(self):
        jobs = [J(c % 3, a, b) for a in range(10) for c, b in [(0, 4), (1, 8), (2, 16)]]
        seq = RequestSequence(jobs)
        originals = {j.uid: j for j in seq.jobs()}
        for derived in varbatch_sequence(seq).jobs():
            native = originals[derived.origin]
            assert native.arrival <= derived.arrival
            assert derived.deadline <= native.deadline

    def test_bound_one_passes_through(self):
        seq = RequestSequence([J(0, 3, 1)])
        out = varbatch_sequence(seq)
        job = next(out.jobs())
        assert job.arrival == 3
        assert job.delay_bound == 1
        assert job.origin is not None

    def test_bound_two_and_three_use_period_one(self):
        seq = RequestSequence([J(0, 3, 2), J(1, 3, 3)])
        out = varbatch_sequence(seq)
        for job in out.jobs():
            assert job.arrival == 4
            assert job.delay_bound == 1

    def test_non_power_of_two_bounds(self):
        seq = RequestSequence([J(0, 5, 12)])  # j=3 -> period 2
        out = varbatch_sequence(seq)
        job = next(out.jobs())
        assert job.delay_bound == 2
        assert job.arrival == 6
        assert job.deadline <= 5 + 12

    def test_horizon_never_shrinks(self):
        seq = RequestSequence([J(0, 0, 8)], horizon=32)
        assert varbatch_sequence(seq).horizon >= 32

    def test_empty_sequence(self):
        out = varbatch_sequence(RequestSequence([]))
        assert out.num_jobs == 0


class TestPullBack:
    def test_round_trip_validates_against_original(self):
        jobs = [J(c % 2, a, 8) for a in range(8) for c in range(2)]
        seq = RequestSequence(jobs)
        batched = varbatch_sequence(seq)
        inst = Instance(batched, delta=2)
        run = simulate(inst, DeltaLRUEDFPolicy(2), n=8)
        pulled = pull_back_schedule(run.schedule, batched, seq)
        validate_schedule(pulled, seq, 2)

    def test_drop_cost_preserved(self):
        jobs = [J(0, a, 4) for a in range(6)]
        seq = RequestSequence(jobs)
        batched = varbatch_sequence(seq)
        inst = Instance(batched, delta=1)
        run = simulate(inst, DeltaLRUEDFPolicy(1), n=4)
        pulled = pull_back_schedule(run.schedule, batched, seq)
        assert (seq.num_jobs - len(pulled.executed_uids())) == (
            batched.num_jobs - len(run.schedule.executed_uids())
        )

    def test_reconfigs_carried_verbatim(self):
        jobs = [J(0, 1, 4)]
        seq = RequestSequence(jobs)
        batched = varbatch_sequence(seq)
        inst = Instance(batched, delta=1)
        run = simulate(inst, DeltaLRUEDFPolicy(1), n=4)
        pulled = pull_back_schedule(run.schedule, batched, seq)
        assert pulled.reconfig_count() == run.schedule.reconfig_count()
