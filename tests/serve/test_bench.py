"""The serve benchmark harness: one tiny case end to end, plus rendering."""

import asyncio

from repro.serve.bench import SCHEMA, _run_case, render


class TestBenchCase:
    def test_one_tiny_case_end_to_end(self):
        case = asyncio.run(
            _run_case("tiny", "poisson", 2, 1, horizon=48, seed=0)
        )
        assert case["digests_match"] is True
        assert case["jobs"] > 0
        assert case["rounds"] >= 48
        assert case["jobs_per_second"] > 0
        assert case["latency_ms"]["p99"] >= case["latency_ms"]["p50"]

    def test_render_flags_status(self):
        payload = {
            "schema": SCHEMA,
            "scale": "quick",
            "python": "3.11",
            "cases": [{
                "case": "x", "jobs_per_second": 1000.0,
                "rounds_per_second": 300.0,
                "latency_ms": {"p50": 0.1, "p99": 0.4},
                "digests_match": True,
            }],
            "all_digests_match": True,
        }
        text = render(payload)
        assert "match" in text
        assert "all digests match: yes" in text
