"""CLI smoke tests: `repro serve` as a real subprocess, `repro loadgen` against it.

This is the same drill the CI serve-smoke leg runs: start the server
with a port file, wait for it to listen, replay a workload with digest
verification, then SIGTERM and expect a clean zero exit.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main

REPO = Path(__file__).resolve().parents[2]


def serve_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def wait_for(path: Path, timeout: float = 20.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists() and path.read_text().strip():
            return
        time.sleep(0.05)
    raise AssertionError(f"{path} did not appear within {timeout}s")


@pytest.fixture
def server(tmp_path):
    port_file = tmp_path / "ports.json"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port-file", str(port_file),
            "--journal", str(tmp_path / "journal.jsonl"),
            "--shards", "2", "--n", "16", "--delta", "4",
            "--quiet",
        ],
        env=serve_env(),
        cwd=REPO,
    )
    try:
        wait_for(port_file)
        yield json.loads(port_file.read_text())
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=20) == 0


class TestServeSmoke:
    def test_loadgen_cli_verifies_digests(self, server, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        rc = main([
            "loadgen",
            "--port", str(server["port"]),
            "--workload", "poisson", "--delta", "4", "--seed", "2",
            "--horizon", "96",
            "--json", str(report_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "MATCH" in out and "MISMATCH" not in out
        report = json.loads(report_path.read_text())
        assert report["digests_match"] is True
        # The generator pads the horizon past the last deadline, so the
        # replay covers at least the requested arrival rounds.
        assert report["rounds"] >= 96
        assert report["params"]["shards"] == 2

    def test_sigterm_hangs_up_idle_clients(self, tmp_path):
        """A client parked on the socket gets EOF when the server is
        terminated — stop() closes every open connection, so shutdown
        never waits on idle clients."""
        import socket

        port_file = tmp_path / "ports.json"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port-file", str(port_file),
                "--n", "8", "--delta", "1", "--policy", "edf",
                "--quiet",
            ],
            env=serve_env(),
            cwd=REPO,
        )
        try:
            wait_for(port_file)
            ports = json.loads(port_file.read_text())
            with socket.create_connection(
                ("127.0.0.1", ports["port"]), timeout=10
            ) as sock:
                sock.sendall(b'{"type": "hello"}\n')
                assert b"welcome" in sock.recv(65536)
                proc.send_signal(signal.SIGTERM)
                sock.settimeout(15)
                # EOF, not a hang: recv drains any close-race bytes then
                # returns b"".
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
            assert proc.wait(timeout=20) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=20)

    def test_healthz_over_http(self, server):
        import urllib.request

        with urllib.request.urlopen(
            f"http://127.0.0.1:{server['metrics_port']}/healthz", timeout=10
        ) as response:
            health = json.loads(response.read())
        assert health["status"] == "ok"
        assert health["shards"] == 2


class TestLoadgenErrors:
    def test_needs_port_or_port_file(self):
        with pytest.raises(SystemExit, match="--port"):
            main(["loadgen"])

    def test_refuses_wrong_delta(self, server):
        with pytest.raises(SystemExit, match="Delta"):
            main([
                "loadgen", "--port", str(server["port"]),
                "--workload", "poisson", "--delta", "2", "--horizon", "32",
            ])


class TestObservabilityCli:
    @pytest.fixture
    def workers_server(self, tmp_path):
        """A --workers server with spans on, driven by one loadgen pass."""
        port_file = tmp_path / "ports.json"
        spans_file = tmp_path / "spans.jsonl"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port-file", str(port_file),
                "--journal", str(tmp_path / "journal.jsonl"),
                "--spans", str(spans_file),
                "--workers", "--shards", "2", "--n", "16", "--delta", "4",
                "--quiet",
            ],
            env=serve_env(),
            cwd=REPO,
        )
        try:
            wait_for(port_file)
            ports = json.loads(port_file.read_text())
            rc = main([
                "loadgen", "--port", str(ports["port"]),
                "--workload", "poisson", "--delta", "4", "--horizon", "48",
            ])
            assert rc == 0
            yield {**ports, "spans": spans_file}
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=20) == 0

    def test_metrics_url_scrapes_the_live_server(self, workers_server, capsys):
        url = f"http://127.0.0.1:{workers_server['metrics_port']}/metrics"
        rc = main(["metrics", "--url", url])
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro_serve_ticks_total" in out
        # worker series made it through the scrape-parse-render loop
        assert 'shard="0",worker="0"' in out
        assert 'shard="1",worker="1"' in out

    def test_metrics_url_prom_format_round_trips(self, workers_server, capsys):
        from repro.telemetry import parse_prometheus

        url = f"http://127.0.0.1:{workers_server['metrics_port']}/metrics"
        rc = main(["metrics", "--url", url, "--format", "prom"])
        out = capsys.readouterr().out
        assert rc == 0
        snap = parse_prometheus(out)
        assert "repro_rounds_total" in snap["counters"]

    def test_top_renders_per_shard_table(self, workers_server, capsys):
        url = f"http://127.0.0.1:{workers_server['metrics_port']}/metrics"
        rc = main(["top", "--url", url, "--count", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        header, shard0, shard1 = (
            line for line in out.splitlines()
            if line.startswith(("| shard", "|     0", "|     1"))
        )
        assert "respawns" in header and "tick p95 ms" in header
        assert "server: ticks" in out

    def test_spans_cli_renders_complete_trees(self, workers_server, capsys):
        rc = main(["spans", str(workers_server["spans"]), "--limit", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "trace t00" in out
        for name in ("submit", "admit", "wal.intent", "commit"):
            assert name in out

    def test_spans_json_mode_strips_wall_ms(self, workers_server, capsys):
        rc = main([
            "spans", str(workers_server["spans"]), "--json",
            "--trace", "t000001",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        records = [json.loads(line) for line in out.splitlines()]
        assert records
        assert all(r["trace"] == "t000001" for r in records)
        assert all("wall_ms" not in r for r in records)

    def test_metrics_url_and_input_are_exclusive(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["metrics", "--url", "http://x/metrics", "--input", "f.json"])

    def test_top_needs_url_or_port_file(self):
        with pytest.raises(SystemExit, match="--url or --port-file"):
            main(["top"])

    def test_spans_rejects_a_non_span_file(self, tmp_path):
        bogus = tmp_path / "not-spans.jsonl"
        bogus.write_text('{"kind": "other"}\n')
        with pytest.raises(SystemExit, match="repro-trace-v2"):
            main(["spans", str(bogus)])


class TestServeConfigErrors:
    def test_bad_shard_split_is_a_clean_error(self):
        # 17 resources over 3 shards gives dlru-edf a capacity it rejects;
        # the CLI must turn that into a SystemExit, not a traceback.
        with pytest.raises(SystemExit, match="shard 0 got capacity 6"):
            main([
                "serve", "--n", "17", "--shards", "3",
                "--policy", "dlru-edf", "--quiet",
            ])
