"""The write-ahead session journal: record shapes, replay, crash windows.

The contract under test: a journal is a faithful WAL of the session —
an intent record is fsynced *before* its batch touches any shard, the
commit marker lands before the commit is applied, and round records are
proof the whole session completed the round.  Replay of any crash
prefix therefore reconstructs a valid session state, and a batch whose
marker made it to disk is admitted exactly once, never twice, never
half.
"""

import pytest

from repro.core.job import Job
from repro.policies import make_policy
from repro.serve.journal import (
    commit_record,
    read_records,
    replay_ops,
    replay_session,
    replay_shard,
    round_record,
    submit_record,
)
from repro.serve.session import SessionShard, ShardedSession
from repro.utils.jsonl import JsonlJournal


def make_session(shards=2, n=8):
    # EDF wants an even capacity per shard, so n must split evenly.
    return ShardedSession(
        n=n,
        delta=1,
        policy_factory=lambda: make_policy("edf", 1),
        shards=shards,
    )


def session_digests(session):
    return [shard.digests() for shard in session.shards]


def drive(journal, session, batches_per_round=2, rounds=3):
    """Run a session while journaling with the server's WAL discipline."""
    seq = 0
    uid = 0
    for r in range(rounds):
        for b in range(batches_per_round):
            jobs = [
                Job(color=f"c{(b + i) % 5}", arrival=r, delay_bound=3)
                for i in range(3)
            ]
            uid += len(jobs)
            session.validate(jobs)
            seq += 1
            journal.append(submit_record(seq, session.round, jobs), sync=True)
            journal.append(commit_record(seq), sync=False)
            session.commit(jobs)
        journal.append(round_record(session.tick()), sync=False)


class TestRecordShapes:
    def test_submit_record_wire_shape(self):
        job = Job(color="a", arrival=2, delay_bound=3, uid=17)
        record = submit_record(5, 2, [job])
        assert record == {
            "kind": "submit",
            "seq": 5,
            "round": 2,
            "jobs": [
                {"color": "a", "arrival": 2, "delay_bound": 3, "uid": 17}
            ],
        }

    def test_commit_and_round_records(self):
        assert commit_record(5) == {"kind": "commit", "seq": 5}
        frame = {"round": 0, "executed": [1], "dropped": [], "cost": 0}
        assert round_record(frame) == {"kind": "round", **frame}


class TestReplayOps:
    def test_unmarked_intent_is_skipped(self):
        jobs = [Job(color="a", arrival=0, delay_bound=2, uid=1)]
        records = [
            {"kind": "header", "schema": "repro-serve-journal-v2"},
            submit_record(1, 0, jobs),
            commit_record(1),
            round_record({"round": 0, "executed": [1]}),
            submit_record(2, 1, jobs),  # intent, no marker: crash window
        ]
        ops = replay_ops(records)
        assert [op for op, _ in ops] == ["submit", "round"]
        (replayed,) = ops[0][1]
        assert (replayed.color, replayed.arrival, replayed.uid) == ("a", 0, 1)

    def test_v1_submit_without_seq_counts_as_marked(self):
        # v1 journals wrote submits only after commit, so a seq-less
        # submit record is an admitted batch by construction.
        records = [
            {
                "kind": "submit",
                "jobs": [{"color": "a", "arrival": 0, "delay_bound": 2}],
            },
            {"kind": "round", "round": 0, "executed": []},
        ]
        ops = replay_ops(records)
        assert [op for op, _ in ops] == ["submit", "round"]

    def test_marker_order_does_not_matter_to_marking(self):
        # A marker that raced ahead in the file still marks its seq:
        # marking is a set over the whole record list, application order
        # stays file order.
        jobs = [Job(color="a", arrival=0, delay_bound=2, uid=1)]
        ops = replay_ops([commit_record(1), submit_record(1, 0, jobs)])
        assert [op for op, _ in ops] == ["submit"]


class TestCrashWindows:
    """Every kill point in the WAL sequence replays to a valid state."""

    def write_prefix(self, path, stop_after):
        """The journal as a crash between WAL steps would leave it."""
        jobs = [Job(color=f"c{i}", arrival=0, delay_bound=2) for i in range(4)]
        with JsonlJournal(path, truncate=True) as journal:
            records = [
                submit_record(1, 0, jobs),
                commit_record(1),
            ]
            for record in records[:stop_after]:
                journal.append(record)
        return jobs

    def test_kill_between_intent_and_marker_drops_the_batch(self, tmp_path):
        """Regression: the client never saw ``accept``, so replay must not
        admit the batch — an intent alone is not an admission."""
        path = tmp_path / "journal.jsonl"
        self.write_prefix(str(path), stop_after=1)
        session = make_session()
        assert replay_session(read_records(path), session) == 0
        assert session.pending == 0
        assert session_digests(session) == session_digests(make_session())

    def test_kill_after_marker_admits_exactly_once(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        jobs = self.write_prefix(str(path), stop_after=2)
        session = make_session()
        replay_session(read_records(path), session)
        assert session.pending == len(jobs)
        oracle = make_session()
        oracle.submit(jobs)
        assert session_digests(session) == session_digests(oracle)

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self.write_prefix(str(path), stop_after=2)
        with open(path, "a") as fh:
            fh.write('{"kind": "rou')  # crash mid-write, no newline
        records = read_records(path)
        assert [r["kind"] for r in records] == ["submit", "commit"]

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"kind": "commit", "seq": 1}\nnot json\n{"a": 1}\n')
        with pytest.raises(ValueError, match="line 2"):
            read_records(path)


class TestReplayEquivalence:
    def test_replay_session_matches_the_original(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        original = make_session()
        with JsonlJournal(str(path), truncate=True) as journal:
            drive(journal, original)
        rebuilt = make_session()
        stepped = replay_session(read_records(path), rebuilt)
        assert stepped == 3
        assert rebuilt.round == original.round
        assert rebuilt.stats() == original.stats()
        assert session_digests(rebuilt) == session_digests(original)

    def test_replay_shard_matches_replay_session_per_shard(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        original = make_session(shards=3, n=12)
        with JsonlJournal(str(path), truncate=True) as journal:
            drive(journal, original)
        records = read_records(path)
        for shard_id, live_shard in enumerate(original.shards):
            fresh = SessionShard(
                shard_id,
                live_shard.n,
                original.delta,
                make_policy("edf", original.delta),
            )
            stepped = replay_shard(records, fresh, shards=3)
            assert stepped == 3
            assert fresh.digests() == live_shard.digests()
            assert fresh.stats() == live_shard.stats()
