"""LiveSequence: the queue-fed adapter behind live sessions.

Includes the core of the serve determinism contract: pushing a frozen
workload round by round and stepping the simulator manually is
bit-identical to ``Simulator.run`` on the frozen sequence, for both
engines and both paper speeds.
"""

import pytest

from repro.core import LiveSequence, LiveSequenceError, Simulator, result_digest
from repro.core.engine import ENGINES, make_simulator
from repro.core.job import Job
from repro.policies import make_policy
from repro.workloads import poisson_workload


def J(color, arrival, bound, **kw):
    return Job(color=color, arrival=arrival, delay_bound=bound, **kw)


class TestFeeding:
    def test_request_delivers_in_push_order(self):
        live = LiveSequence()
        a, b = J(0, 0, 2), J(1, 0, 2)
        live.push(a)
        live.push(b)
        assert list(live.request(0)) == [a, b]

    def test_rounds_without_jobs_are_empty(self):
        live = LiveSequence()
        assert len(live.request(0)) == 0

    def test_future_rounds_buffer(self):
        live = LiveSequence()
        live.push(J(0, 2, 2))
        assert live.buffered == 1
        live.request(0)
        live.request(1)
        assert len(live.request(2)) == 1
        assert live.buffered == 0

    def test_horizon_tracks_consumption(self):
        live = LiveSequence()
        assert live.horizon == 0
        live.request(0)
        assert live.horizon == 1

    def test_drain_horizon_covers_deadlines(self):
        live = LiveSequence()
        live.push(J(0, 1, 4))
        # Deadline is round 5 (arrival 1 + bound 4); the drop happens in
        # round 5, so stepping rounds 0..5 (horizon 6) fully drains.
        assert live.drain_horizon() == 6


class TestAdmission:
    def test_stale_round_rejected(self):
        live = LiveSequence()
        live.request(0)
        with pytest.raises(LiveSequenceError) as err:
            live.push(J(0, 0, 2))
        assert err.value.reason == "stale_round"

    def test_inconsistent_delay_bound_rejected(self):
        live = LiveSequence()
        live.push(J("x", 0, 2))
        with pytest.raises(LiveSequenceError) as err:
            live.push(J("x", 1, 4))
        assert err.value.reason == "inconsistent_delay_bound"

    def test_closed_rejects_pushes_but_still_delivers(self):
        live = LiveSequence()
        live.push(J(0, 0, 2))
        live.close()
        with pytest.raises(LiveSequenceError) as err:
            live.push(J(1, 0, 2))
        assert err.value.reason == "closed"
        assert len(live.request(0)) == 1

    def test_out_of_order_request_rejected(self):
        live = LiveSequence()
        with pytest.raises(LiveSequenceError) as err:
            live.request(3)
        assert err.value.reason == "out_of_order"

    def test_check_does_not_mutate(self):
        live = LiveSequence()
        live.check("x", 0, 2)
        assert live.delay_bound_of("x") is None
        assert live.num_jobs == 0


class TestLiveReplayDeterminism:
    """Live push-and-step must be bit-identical to the offline run."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("speed", [1, 2])
    def test_digest_matches_offline_run(self, engine, speed):
        incremental = engine != "reference"
        instance = poisson_workload(delta=4, seed=11, horizon=96)
        offline = make_simulator(
            instance,
            make_policy("dlru-edf", 4, incremental=incremental),
            8,
            engine=engine,
            speed=speed,
        ).run()

        live = LiveSequence()
        sim = make_simulator(
            live.as_instance(4),
            make_policy("dlru-edf", 4, incremental=incremental),
            8,
            engine=engine,
            speed=speed,
        )
        for rnd in range(instance.horizon):
            for job in instance.sequence.request(rnd):
                live.push(job)
            sim.step(rnd)

        assert result_digest(sim.run(horizon=0)) == result_digest(offline)

    @pytest.mark.parametrize("speed", [1, 2])
    def test_live_digest_agrees_across_engines(self, speed):
        # The engine axis collapses: one workload, fed live, must produce
        # one digest no matter which engine ran it.
        # One instance (uids come from a process-global counter, so every
        # engine must replay the very same frozen jobs).
        instance = poisson_workload(delta=4, seed=23, horizon=96)
        digests = set()
        for engine in ENGINES:
            live = LiveSequence()
            sim = make_simulator(
                live.as_instance(4),
                make_policy(
                    "dlru-edf", 4, incremental=engine != "reference"
                ),
                8,
                engine=engine,
                speed=speed,
            )
            for rnd in range(instance.horizon):
                for job in instance.sequence.request(rnd):
                    live.push(job)
                sim.step(rnd)
            digests.add(result_digest(sim.run(horizon=0)))
        assert len(digests) == 1

    def test_early_push_of_whole_workload_is_equivalent(self):
        # Buffering every job up front (arrivals still in the future) must
        # schedule identically to feeding one round at a time.
        instance = poisson_workload(delta=2, seed=5, horizon=64)
        offline = Simulator(
            instance, make_policy("edf", 2), n=4
        ).run()
        live = LiveSequence()
        for job in instance.sequence.jobs():
            live.push(job)
        sim = Simulator(live.as_instance(2), make_policy("edf", 2), n=4)
        for rnd in range(instance.horizon):
            sim.step(rnd)
        assert result_digest(sim.run(horizon=0)) == result_digest(offline)
