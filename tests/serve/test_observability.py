"""End-to-end serve observability: merged worker metrics and health.

The tentpole contract: in ``--workers`` mode the ``/metrics`` endpoint
is a *superset* of single-process mode — every engine-level family the
in-process session would expose shows up again, tagged with the
``worker``/``shard`` identity of the process that produced it, merged
with the frontend's own series.  A scrape must never restart a shard,
and a failed scrape degrades to last-good data plus a failure counter,
never to silently missing series.
"""

import asyncio
import json

import pytest

from repro.core.job import Job
from repro.serve.server import SchedulingServer, ServeConfig
from repro.serve.workers import WorkerShardedSession
from repro.telemetry import parse_prometheus, render_prometheus
from repro.telemetry.registry import parse_label_key


def run_server(test, **config_kw):
    """Run ``await test(server)`` against a fresh started server."""
    async def runner():
        defaults = dict(n=8, delta=1, policy="edf", metrics_port=None)
        defaults.update(config_kw)
        server = SchedulingServer(ServeConfig(**defaults))
        await server.start()
        try:
            return await test(server)
        finally:
            await server.stop()

    return asyncio.run(runner())


def drive(server, rounds=4):
    """Push a small multi-shard workload through the live session."""
    jobs = [
        Job(color=f"c{i}", arrival=r, delay_bound=3)
        for r in range(3)
        for i in range(6)
    ]
    server.session.submit(jobs)
    server._tick_rounds(rounds)


def family_names(snapshot):
    return (
        set(snapshot["counters"])
        | set(snapshot["gauges"])
        | set(snapshot["histograms"])
    )


class TestMergedWorkerMetrics:
    def test_worker_series_carry_worker_and_shard_labels(self, tmp_path):
        async def test(server):
            drive(server)
            snap = server.merged_snapshot()
            rounds = snap["counters"]["repro_rounds_total"]
            workers_seen = {
                parse_label_key(key).get("worker") for key in rounds
            }
            assert workers_seen == {"0", "1"}
            for key in rounds:
                labels = parse_label_key(key)
                assert labels["shard"] == labels["worker"]
            # frontend series survive the merge alongside worker series
            assert snap["counters"]["repro_serve_ticks_total"][""] == 4
            # per-worker round latency flows too (the `repro top` column)
            tick_keys = snap["histograms"]["repro_serve_round_seconds"]
            assert "" in tick_keys  # the frontend's own cell
            assert any('worker="0"' in key for key in tick_keys)

        run_server(
            test, shards=2, workers=True,
            journal=str(tmp_path / "j.jsonl"), metrics_interval=0.0,
        )

    def test_workers_mode_families_superset_of_single_process(self, tmp_path):
        def families(**kw):
            async def test(server):
                drive(server)
                return family_names(server.merged_snapshot())

            return run_server(test, shards=2, **kw)

        single = families()
        workers = families(
            workers=True, journal=str(tmp_path / "j.jsonl"),
            metrics_interval=0.0,
        )
        assert single <= workers

    def test_merged_snapshot_survives_the_prom_round_trip(self, tmp_path):
        async def test(server):
            drive(server)
            snap = server.merged_snapshot()
            assert parse_prometheus(render_prometheus(snap)) == snap

        run_server(
            test, shards=2, workers=True,
            journal=str(tmp_path / "j.jsonl"), metrics_interval=0.0,
        )


class TestScrapeFailureDegradation:
    def test_failed_scrape_keeps_last_good_and_counts(self, tmp_path):
        async def test(server):
            drive(server)
            good = server.merged_snapshot()
            assert any(
                'worker="0"' in key
                for key in good["counters"]["repro_rounds_total"]
            )

            def broken_scrape(budget=None):
                return {}, list(range(server.session.num_shards))

            server.session.metrics_snapshots = broken_scrape
            degraded = server.merged_snapshot()
            # last-good worker series are still served...
            assert (
                degraded["counters"]["repro_rounds_total"]
                == good["counters"]["repro_rounds_total"]
            )
            # ...and the failure is visible as a counter, per shard.
            failures = degraded["counters"][
                "repro_serve_worker_scrape_failures_total"
            ]
            assert failures == {'shard="0"': 1, 'shard="1"': 1}

        run_server(
            test, shards=2, workers=True,
            journal=str(tmp_path / "j.jsonl"), metrics_interval=0.0,
        )

    def test_scrape_never_respawns_a_worker(self, tmp_path):
        async def test(server):
            drive(server)
            session = server.session
            attempts = [wk.attempt for wk in session._workers]
            for _ in range(3):
                server.merged_snapshot()
            assert [wk.attempt for wk in session._workers] == attempts

        run_server(
            test, shards=2, workers=True,
            journal=str(tmp_path / "j.jsonl"), metrics_interval=0.0,
        )


class TestWorkerHealth:
    def test_worker_health_shape(self, tmp_path):
        async def test(server):
            drive(server)
            health = server.session.worker_health()
            assert [h["shard"] for h in health] == [0, 1]
            for entry in health:
                assert sorted(entry) == [
                    "alive", "pid", "replay_lag", "replayed_rounds",
                    "respawns", "shard",
                ]
                assert entry["alive"] is True
                assert entry["respawns"] == 0
                assert entry["replayed_rounds"] == 0
                assert isinstance(entry["pid"], int)

        run_server(
            test, shards=2, workers=True,
            journal=str(tmp_path / "j.jsonl"), metrics_interval=0.0,
        )

    def test_healthz_reports_per_worker_liveness(self, tmp_path):
        async def test(server):
            drive(server)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.metrics_port
            )
            writer.write(b"GET /healthz HTTP/1.1\r\n\r\n")
            await writer.drain()
            data = await reader.read()
            writer.close()
            await writer.wait_closed()
            head, _, body = data.decode().partition("\r\n\r\n")
            assert head.split()[1] == "200"
            health = json.loads(body)
            assert health["status"] == "ok"
            assert [w["shard"] for w in health["workers"]] == [0, 1]
            assert all(w["alive"] for w in health["workers"])

        run_server(
            test, shards=2, workers=True, metrics_port=0,
            journal=str(tmp_path / "j.jsonl"), metrics_interval=0.0,
        )

    def test_single_process_healthz_has_no_workers_key(self):
        async def test(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.metrics_port
            )
            writer.write(b"GET /healthz HTTP/1.1\r\n\r\n")
            await writer.drain()
            data = await reader.read()
            writer.close()
            await writer.wait_closed()
            _, _, body = data.decode().partition("\r\n\r\n")
            assert "workers" not in json.loads(body)

        run_server(test, metrics_port=0)


class TestHttpMergedMetrics:
    def test_metrics_endpoint_serves_worker_labeled_series(self, tmp_path):
        async def test(server):
            drive(server)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.metrics_port
            )
            writer.write(b"GET /metrics HTTP/1.1\r\n\r\n")
            await writer.drain()
            data = await reader.read()
            writer.close()
            await writer.wait_closed()
            head, _, body = data.decode().partition("\r\n\r\n")
            assert head.split()[1] == "200"
            assert 'repro_rounds_total{shard="0",worker="0"}' in body
            assert 'repro_rounds_total{shard="1",worker="1"}' in body
            assert "repro_serve_round_seconds_bucket" in body

        run_server(
            test, shards=2, workers=True, metrics_port=0,
            journal=str(tmp_path / "j.jsonl"), metrics_interval=0.0,
        )


class TestLatencyConfig:
    def test_bad_observability_config_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(metrics_interval=-1.0)
        with pytest.raises(ValueError):
            ServeConfig(latency_window=0)
