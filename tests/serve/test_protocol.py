"""Unit tests for the repro-serve-v1 wire codec."""

import pytest

from repro.core.job import Job
from repro.serve.protocol import (
    ProtocolError,
    decode_frame,
    encode_frame,
    job_from_wire,
    job_to_wire,
)


class TestFrameCodec:
    def test_round_trip(self):
        frame = {"type": "submit", "jobs": [], "id": 7}
        assert decode_frame(encode_frame(frame)) == frame

    def test_encode_is_one_line(self):
        assert encode_frame({"type": "tick"}).count(b"\n") == 1

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame(b"[1, 2]\n")
        assert err.value.code == "bad_frame"

    def test_rejects_bad_json(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame(b"{nope\n")
        assert err.value.code == "bad_json"

    def test_rejects_missing_type(self):
        with pytest.raises(ProtocolError):
            decode_frame(b'{"jobs": []}\n')


class TestJobCodec:
    def test_round_trip_preserves_everything(self):
        job = Job(color="video", arrival=3, delay_bound=4, uid=99)
        back = job_from_wire(job_to_wire(job), default_arrival=0)
        assert back == job

    def test_tuple_colors_round_trip(self):
        job = Job(color=(1, "a"), arrival=0, delay_bound=2, uid=5)
        back = job_from_wire(job_to_wire(job), default_arrival=0)
        assert back.color == (1, "a")

    def test_arrival_defaults_to_current_round(self):
        job = job_from_wire({"color": 0, "delay_bound": 2}, default_arrival=17)
        assert job.arrival == 17

    def test_uid_defaults_to_fresh(self):
        a = job_from_wire({"color": 0, "delay_bound": 2}, default_arrival=0)
        b = job_from_wire({"color": 0, "delay_bound": 2}, default_arrival=0)
        assert a.uid != b.uid

    @pytest.mark.parametrize("bad", [
        {"delay_bound": 2},                            # no color
        {"color": 0},                                  # no bound
        {"color": 0, "delay_bound": 0},                # bound < 1
        {"color": 0, "delay_bound": True},             # bool is not an int
        {"color": 0, "delay_bound": 2, "arrival": -1},
        {"color": 0, "delay_bound": 2, "uid": "x"},
        "not an object",
    ])
    def test_invalid_jobs_rejected(self, bad):
        with pytest.raises(ProtocolError) as err:
            job_from_wire(bad, default_arrival=0)
        assert err.value.code == "bad_job"
