"""Connection-level resilience: loadgen connect retries, idle-read timeout.

Both features are deterministic by design — the retry ladder has no
jitter, and the idle timeout emits a structured ``idle_timeout`` error
frame before closing — so the tests assert exact delays and exact wire
frames, not "eventually works".
"""

import asyncio

import pytest

from repro.serve.loadgen import LoadgenError, _connect_with_retry
from repro.serve.protocol import encode_frame

from tests.serve.test_server import Conn, wire_job, with_server


class TestConnectRetry:
    def test_retries_until_success(self, monkeypatch):
        calls = {"n": 0}

        async def flaky(host, port):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionRefusedError("not yet")
            return "R", "W"

        sleeps = []

        async def fake_sleep(delay):
            sleeps.append(delay)

        monkeypatch.setattr(asyncio, "open_connection", flaky)
        monkeypatch.setattr(asyncio, "sleep", fake_sleep)
        result = asyncio.run(_connect_with_retry("h", 1, attempts=8))
        assert result == ("R", "W")
        assert calls["n"] == 3
        # Deterministic exponential ladder, no jitter.
        assert sleeps == [0.05, 0.1]

    def test_backoff_ladder_is_capped(self, monkeypatch):
        async def always_down(host, port):
            raise ConnectionRefusedError("down")

        sleeps = []

        async def fake_sleep(delay):
            sleeps.append(delay)

        monkeypatch.setattr(asyncio, "open_connection", always_down)
        monkeypatch.setattr(asyncio, "sleep", fake_sleep)
        with pytest.raises(LoadgenError) as exc:
            asyncio.run(_connect_with_retry("h", 1, attempts=8))
        assert "after 8 attempts" in str(exc.value)
        assert sleeps == [0.05, 0.1, 0.2, 0.4, 0.8, 1.0, 1.0]

    def test_single_attempt_fails_fast(self, monkeypatch):
        async def down(host, port):
            raise ConnectionRefusedError("down")

        slept = []

        async def fake_sleep(delay):
            slept.append(delay)

        monkeypatch.setattr(asyncio, "open_connection", down)
        monkeypatch.setattr(asyncio, "sleep", fake_sleep)
        with pytest.raises(LoadgenError):
            asyncio.run(_connect_with_retry("h", 1, attempts=1))
        assert slept == []


class TestIdleTimeout:
    def test_idle_connection_gets_error_frame_then_close(self):
        async def test(server, conn):
            # Send nothing: the server must time the read out, answer with
            # a structured error, and hang up.
            reply = await asyncio.wait_for(conn.recv(), timeout=5)
            assert reply["type"] == "error"
            assert reply["code"] == "idle_timeout"
            assert await conn.reader.readline() == b""

        with_server(test, idle_timeout=0.2)

    def test_active_connection_survives(self):
        async def test(server, conn):
            for _ in range(4):
                await asyncio.sleep(0.1)
                reply = await conn.call({
                    "type": "submit", "jobs": [wire_job("a", 2)],
                })
                assert reply["type"] == "accept"

        with_server(test, idle_timeout=0.3)

    def test_zero_disables_the_timeout(self):
        async def test(server, conn):
            await asyncio.sleep(0.3)
            reply = await conn.call({
                "type": "submit", "jobs": [wire_job("a", 2)],
            })
            assert reply["type"] == "accept"

        with_server(test, idle_timeout=0)

    def test_disconnects_are_counted(self):
        async def test(server, conn):
            await asyncio.wait_for(conn.recv(), timeout=5)
            snap = server.telemetry.registry.snapshot()
            assert snap["counters"]["repro_serve_idle_disconnects_total"][""] == 1

        with_server(test, idle_timeout=0.2)
