"""Integration tests for the asyncio scheduling server.

Everything runs in-process on loopback with ``asyncio.run`` (the suite
has no async test runner, and doesn't need one).  The determinism class
is the tentpole contract: a replay through the live server must be
byte-identical to the offline ``Simulator.run``, for both engines and
both paper speeds.
"""

import asyncio
import json

import pytest

from repro.core import Simulator, result_digests
from repro.core.job import Job
from repro.policies import make_policy
from repro.serve.loadgen import _replay
from repro.serve.protocol import decode_frame, encode_frame
from repro.serve.server import SchedulingServer, ServeConfig
from repro.workloads import poisson_workload


class Conn:
    """One client connection speaking raw frames."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    async def call(self, frame):
        self.writer.write(encode_frame(frame))
        await self.writer.drain()
        return await self.recv()

    async def recv(self):
        return decode_frame(await self.reader.readline())

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def with_server(test, **config_kw):
    """Run ``await test(server, conn)`` against a fresh started server."""
    async def runner():
        defaults = dict(n=8, delta=1, policy="edf", metrics_port=None)
        defaults.update(config_kw)
        server = SchedulingServer(ServeConfig(**defaults))
        await server.start()
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        conn = Conn(reader, writer)
        try:
            return await test(server, conn)
        finally:
            await conn.close()
            await server.stop()

    return asyncio.run(runner())


def wire_job(color, bound, arrival=None, uid=None):
    job = {"color": color, "delay_bound": bound}
    if arrival is not None:
        job["arrival"] = arrival
    if uid is not None:
        job["uid"] = uid
    return job


class TestHandshake:
    def test_welcome_carries_session_parameters(self):
        async def test(server, conn):
            welcome = await conn.call({"type": "hello", "proto": "repro-serve-v1"})
            assert welcome["type"] == "welcome"
            assert welcome["proto"] == "repro-serve-v1"
            assert welcome["shards"] == 2
            assert welcome["shard_capacity"] == [4, 4]
            assert welcome["round"] == 0
            assert welcome["clock"] == "client"
            assert welcome["engine"] == "incremental"

        with_server(test, shards=2)

    def test_wrong_proto_is_fatal(self):
        async def test(server, conn):
            reply = await conn.call({"type": "hello", "proto": "frob-v9"})
            assert reply["type"] == "error"
            assert reply["code"] == "bad_proto"
            assert await conn.reader.readline() == b""  # server hung up

        with_server(test)


class TestSubmitAndTick:
    def test_accept_then_result(self):
        async def test(server, conn):
            reply = await conn.call({
                "type": "submit", "id": 1,
                "jobs": [wire_job("a", 1), wire_job("b", 1)],
            })
            assert reply["type"] == "accept"
            assert reply["count"] == 2
            result = await conn.call({"type": "tick"})
            assert result["type"] == "result"
            assert result["round"] == 0
            assert len(result["executed"]) == 2
            assert result["pending"] == 0

        with_server(test)

    def test_multi_round_tick_streams_results(self):
        async def test(server, conn):
            await conn.call({"type": "submit", "jobs": [wire_job("a", 2)]})
            conn.writer.write(encode_frame({"type": "tick", "rounds": 3}))
            await conn.writer.drain()
            rounds = [(await conn.recv())["round"] for _ in range(3)]
            assert rounds == [0, 1, 2]

        with_server(test)

    def test_stats_expose_per_shard_digests(self):
        async def test(server, conn):
            await conn.call({"type": "submit", "jobs": [wire_job("a", 1)]})
            await conn.call({"type": "tick"})
            stats = await conn.call({"type": "stats"})
            assert stats["type"] == "stats"
            assert len(stats["shards"]) == 1
            assert set(stats["shards"][0]["digests"]) == {
                "ledger", "schedule", "events", "run",
            }

        with_server(test)

    def test_bye_closes_cleanly(self):
        async def test(server, conn):
            reply = await conn.call({"type": "bye"})
            assert reply["type"] == "bye"
            assert await conn.reader.readline() == b""

        with_server(test)


class TestRejects:
    def test_stale_round(self):
        async def test(server, conn):
            await conn.call({"type": "tick"})
            reply = await conn.call({
                "type": "submit", "jobs": [wire_job("a", 1, arrival=0)],
            })
            assert reply["type"] == "reject"
            assert reply["reason"] == "stale_round"
            assert reply["index"] == 0

        with_server(test)

    def test_backpressure(self):
        async def test(server, conn):
            reply = await conn.call({
                "type": "submit",
                "jobs": [wire_job("a", 8) for _ in range(3)],
            })
            assert reply["reason"] == "backpressure"
            # The whole batch was refused; a smaller one still fits.
            reply = await conn.call({
                "type": "submit", "jobs": [wire_job("a", 8)],
            })
            assert reply["type"] == "accept"

        with_server(test, max_pending=2)

    def test_oversized_batch(self):
        async def test(server, conn):
            reply = await conn.call({
                "type": "submit",
                "jobs": [wire_job(c, 4) for c in range(5)],
            })
            assert reply["reason"] == "backpressure"

        with_server(test, max_batch=4)

    def test_duplicate_uid(self):
        async def test(server, conn):
            await conn.call({
                "type": "submit", "jobs": [wire_job("a", 2, uid=400_000)],
            })
            reply = await conn.call({
                "type": "submit", "jobs": [wire_job("b", 2, uid=400_000)],
            })
            assert reply["reason"] == "duplicate_uid"

        with_server(test)

    def test_malformed_job(self):
        async def test(server, conn):
            reply = await conn.call({
                "type": "submit", "jobs": [{"color": "a"}],
            })
            assert reply["type"] == "reject"
            assert reply["reason"] == "bad_job"

        with_server(test)

    def test_timer_clock_rejects_ticks(self):
        async def test(server, conn):
            reply = await conn.call({"type": "tick"})
            assert reply["type"] == "reject"
            assert reply["reason"] == "timer_clock"

        with_server(test, clock="timer", round_interval=60.0)


class TestProtocolErrors:
    def test_bad_json_keeps_connection_alive(self):
        async def test(server, conn):
            conn.writer.write(b"{nope\n")
            await conn.writer.drain()
            error = await conn.recv()
            assert error["type"] == "error"
            assert error["code"] == "bad_json"
            welcome = await conn.call({"type": "hello"})
            assert welcome["type"] == "welcome"

        with_server(test)

    def test_unknown_frame_type(self):
        async def test(server, conn):
            error = await conn.call({"type": "frobnicate"})
            assert error["type"] == "error"
            assert error["code"] == "bad_frame"

        with_server(test)


class TestTimerClock:
    def test_timer_broadcasts_results_to_subscribers(self):
        async def test(server, conn):
            welcome = await conn.call({"type": "hello", "subscribe": True})
            assert welcome["clock"] == "timer"
            result = await asyncio.wait_for(conn.recv(), timeout=5)
            assert result["type"] == "result"
            assert result["round"] == 0

        with_server(test, clock="timer", round_interval=0.01)


class TestHttpSidecar:
    def test_metrics_and_healthz(self):
        async def test(server, conn):
            await conn.call({"type": "submit", "jobs": [wire_job("a", 1)]})
            await conn.call({"type": "tick"})

            async def http_get(path):
                r, w = await asyncio.open_connection(
                    "127.0.0.1", server.metrics_port
                )
                w.write(f"GET {path} HTTP/1.1\r\n\r\n".encode())
                await w.drain()
                data = await r.read()
                w.close()
                await w.wait_closed()
                head, _, body = data.decode().partition("\r\n\r\n")
                return head.split()[1], body

            status, body = await http_get("/metrics")
            assert status == "200"
            assert "repro_serve_ticks_total 1" in body
            assert "repro_serve_round_seconds_bucket" in body
            assert "repro_rounds_total 1" in body  # engine metrics flow too

            status, body = await http_get("/healthz")
            assert status == "200"
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["round"] == 1

            status, _ = await http_get("/nope")
            assert status == "404"

        with_server(test, metrics_port=0)


class TestServerDeterminism:
    """The tentpole contract: live replay == offline run, bit for bit."""

    @pytest.mark.parametrize("incremental", [True, False])
    @pytest.mark.parametrize("speed", [1, 2])
    def test_single_shard_matches_offline_simulator_run(
        self, incremental, speed
    ):
        instance = poisson_workload(delta=4, seed=23, horizon=80)
        offline = Simulator(
            instance,
            make_policy("dlru-edf", 4, incremental=incremental),
            n=8,
            speed=speed,
            incremental=incremental,
        ).run()

        async def test(server, conn):
            await conn.close()
            return await _replay(
                "127.0.0.1", server.port, instance,
                verify=True, expected_delta=True,
            )

        report = with_server(
            test,
            n=8, delta=4, policy="dlru-edf", shards=1, speed=speed,
            incremental=incremental,
        )
        assert report.digests_match is True
        assert report.server_digests[0] == result_digests(offline)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_replay_verifies_offline(self, shards):
        instance = poisson_workload(delta=4, seed=31, horizon=80)

        async def test(server, conn):
            await conn.close()
            return await _replay(
                "127.0.0.1", server.port, instance,
                verify=True, expected_delta=True,
            )

        report = with_server(
            test, n=16, delta=4, policy="dlru-edf", shards=shards,
        )
        assert report.digests_match is True
        assert len(report.server_digests) == shards
        assert report.jobs == instance.sequence.num_jobs

    def test_two_identical_servers_agree(self):
        instance = poisson_workload(delta=2, seed=47, horizon=64)

        def once():
            async def test(server, conn):
                await conn.close()
                return await _replay(
                    "127.0.0.1", server.port, instance,
                    verify=False, expected_delta=True,
                )

            return with_server(
                test, n=8, delta=2, policy="edf", shards=2,
            ).server_digests

        assert once() == once()


class TestOperationalSurface:
    def test_port_file_and_journal(self, tmp_path):
        port_file = tmp_path / "ports.json"
        journal = tmp_path / "journal.jsonl"

        async def test(server, conn):
            ports = json.loads(port_file.read_text())
            assert ports["port"] == server.port
            assert ports["metrics_port"] == server.metrics_port
            await conn.call({"type": "submit", "jobs": [wire_job("a", 1)]})
            await conn.call({"type": "tick"})

        with_server(
            test,
            metrics_port=0,
            port_file=str(port_file),
            journal=str(journal),
        )
        kinds = [
            json.loads(line)["kind"]
            for line in journal.read_text().splitlines()
        ]
        assert kinds[0] == "header"
        assert "submit" in kinds
        assert "round" in kinds
        assert kinds[-1] == "shutdown"


class TestStatsWireShape:
    def test_stats_before_first_tick_pins_the_frame(self):
        """Regression: ``round`` is the completed-round count (>= 0); it
        used to be derived as next-1 and read -1 on a fresh session."""
        async def test(server, conn):
            stats = await conn.call({"type": "stats"})
            assert stats["round"] == 0
            assert sorted(stats) == [
                "closed", "jobs", "latency", "pending", "round", "shards",
                "type",
            ]
            assert sorted(stats["latency"]) == ["admission_ms", "tick_ms"]
            assert sorted(stats["latency"]["tick_ms"]) == ["p50", "p95", "p99"]
            for shard_stats in stats["shards"]:
                assert shard_stats["round"] == 0
                assert sorted(shard_stats) == [
                    "digests", "jobs", "ledger", "n", "pending",
                    "round", "shard",
                ]
            await conn.call({"type": "submit", "jobs": [wire_job("a", 1)]})
            await conn.call({"type": "tick"})
            stats = await conn.call({"type": "stats"})
            assert stats["round"] == 1
            assert all(s["round"] == 1 for s in stats["shards"])

        with_server(test, shards=2)


class TestStopClosesClients:
    def test_idle_client_gets_eof_on_stop(self):
        """``stop()`` must hang up parked clients, not strand their
        handler coroutines in ``readline()`` until loop teardown."""
        async def test(server, conn):
            welcome = await conn.call({"type": "hello"})
            assert welcome["type"] == "welcome"
            reader2, writer2 = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                await server.stop()
                assert await asyncio.wait_for(conn.reader.readline(), 5) == b""
                assert await asyncio.wait_for(reader2.readline(), 5) == b""
            finally:
                writer2.close()
                try:
                    await writer2.wait_closed()
                except (ConnectionError, OSError):
                    pass

        with_server(test)


class _StubTransport:
    def __init__(self, buffered):
        self.buffered = buffered

    def get_write_buffer_size(self):
        return self.buffered


class _StubWriter:
    """Just enough StreamWriter surface for ``_broadcast``."""

    def __init__(self, buffered):
        self.transport = _StubTransport(buffered)
        self.closed = False
        self.payloads = []

    def is_closing(self):
        return self.closed

    def close(self):
        self.closed = True

    def write(self, data):
        self.payloads.append(data)


class TestSubscriberBackpressure:
    def test_broadcast_drops_subscribers_over_the_buffer_limit(self):
        async def test(server, conn):
            slow = _StubWriter(buffered=512)
            fast = _StubWriter(buffered=0)
            server._subscribers = [slow, fast]
            server._broadcast({"type": "result", "round": 0})
            assert slow.closed and not slow.payloads
            assert not fast.closed and len(fast.payloads) == 1
            assert server._subscribers == [fast]
            counters = server.telemetry.snapshot()["counters"]
            assert counters["repro_serve_subscribers_dropped_total"][""] == 1
            # A second broadcast is a no-op for the dropped writer.
            server._broadcast({"type": "result", "round": 1})
            assert len(fast.payloads) == 2
            counters = server.telemetry.snapshot()["counters"]
            assert counters["repro_serve_subscribers_dropped_total"][""] == 1
            server._subscribers = []

        with_server(test, subscriber_buffer_limit=256)


class TestHttpHeaderCap:
    def test_oversized_header_section_gets_431(self):
        async def test(server, conn):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.metrics_port
            )
            try:
                writer.write(b"GET /metrics HTTP/1.1\r\n")
                filler = b"X-Filler: " + b"a" * 1000 + b"\r\n"
                for _ in range(20):  # ~20 KB > MAX_HEADER_BYTES
                    writer.write(filler)
                await writer.drain()
                status = await reader.readline()
                assert b"431" in status
                body = await reader.read()
                assert b"header section too large" in body
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

        with_server(test, metrics_port=0)

    def test_too_many_header_lines_gets_431(self):
        async def test(server, conn):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.metrics_port
            )
            try:
                writer.write(b"GET /healthz HTTP/1.1\r\n")
                for i in range(150):  # > MAX_HEADER_LINES
                    writer.write(b"X-%d: 1\r\n" % i)
                await writer.drain()
                status = await reader.readline()
                assert b"431" in status
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

        with_server(test, metrics_port=0)


class TestWorkersMode:
    """The server in front of WorkerShardedSession: same protocol, same
    digests, plus the write-ahead journal discipline on disk."""

    def test_workers_replay_verifies_offline(self, tmp_path):
        instance = poisson_workload(delta=4, seed=31, horizon=60)
        journal = tmp_path / "journal.jsonl"

        async def test(server, conn):
            await conn.close()
            return await _replay(
                "127.0.0.1", server.port, instance,
                verify=True, expected_delta=True,
            )

        report = with_server(
            test,
            n=16, delta=4, policy="dlru-edf", shards=2,
            workers=True, worker_timeout=10.0, journal=str(journal),
        )
        assert report.digests_match is True
        assert len(report.server_digests) == 2

        records = [
            json.loads(line) for line in journal.read_text().splitlines()
        ]
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "header"
        assert kinds[-1] == "shutdown"
        # WAL ordering: every submit intent is followed (eventually) by
        # its seq's commit marker, and the intent comes first.
        intents = [r["seq"] for r in records if r["kind"] == "submit"]
        markers = [r["seq"] for r in records if r["kind"] == "commit"]
        assert intents == markers == sorted(intents)
        for seq in intents:
            i = next(
                n for n, r in enumerate(records)
                if r["kind"] == "submit" and r["seq"] == seq
            )
            m = next(
                n for n, r in enumerate(records)
                if r["kind"] == "commit" and r["seq"] == seq
            )
            assert i < m

    def test_workers_need_no_explicit_journal(self):
        async def test(server, conn):
            assert server.config.journal  # auto-created temp path
            reply = await conn.call({
                "type": "submit", "jobs": [wire_job("a", 1)],
            })
            assert reply["type"] == "accept"
            result = await conn.call({"type": "tick"})
            assert result["executed"]

        with_server(test, workers=True, worker_timeout=10.0)
