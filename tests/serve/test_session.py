"""Sharding, capacity splits, and atomic admission control."""

import pytest

from repro.core.job import Job
from repro.policies import make_policy
from repro.serve.session import (
    AdmissionError,
    ShardedSession,
    shard_of,
    split_capacity,
)


def J(color, arrival, bound, **kw):
    return Job(color=color, arrival=arrival, delay_bound=bound, **kw)


def session(**kw):
    # delta=1 keeps EDF's eligibility gate open from the first arrival, so
    # admission tests can reason about executions without counter wrapping.
    defaults = dict(
        n=8,
        delta=1,
        policy_factory=lambda: make_policy("edf", 1),
        shards=2,
    )
    defaults.update(kw)
    return ShardedSession(**defaults)


class TestShardOf:
    def test_deterministic(self):
        assert shard_of("video", 4) == shard_of("video", 4)

    def test_single_shard_is_zero(self):
        assert shard_of("anything", 1) == 0

    def test_distinguishes_types(self):
        # "1" and 1 are different colors and may land on different shards;
        # the hash must at least frame them differently.
        import hashlib
        labels = {f"{type(c).__name__}:{c!r}" for c in (1, "1")}
        assert len(labels) == 2

    def test_spreads_colors(self):
        owners = {shard_of(c, 4) for c in range(64)}
        assert owners == {0, 1, 2, 3}

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            shard_of("x", 0)


class TestSplitCapacity:
    def test_uniform_split_is_exact(self):
        assert split_capacity(16, 4) == [4, 4, 4, 4]

    def test_remainder_goes_to_low_ids(self):
        assert split_capacity(10, 3) == [4, 3, 3]

    def test_decimal_weights_read_exactly(self):
        # int(10 * 0.7) == 6 under binary floats; the exact reading gives 7.
        assert split_capacity(10, 2, [0.3, 0.7]) == [3, 7]

    def test_every_shard_gets_at_least_one(self):
        with pytest.raises(ValueError):
            split_capacity(2, 3)
        with pytest.raises(ValueError):
            split_capacity(10, 2, [0.999, 0.001])

    def test_total_is_preserved(self):
        for n in (7, 16, 33):
            for shards in (1, 2, 3, 5):
                if n >= shards:
                    assert sum(split_capacity(n, shards)) == n

    def test_structural_policy_requirements_reported(self):
        with pytest.raises(ValueError, match="shard 0 got capacity 6"):
            session(
                n=17, shards=3,
                policy_factory=lambda: make_policy("dlru-edf", 4),
            )


class TestAtomicAdmission:
    def test_accepts_and_routes_by_color(self):
        s = session()
        s.submit([J("a", 0, 2), J("b", 0, 2), J("a", 0, 2)])
        owner = s.shard_for("a")
        assert owner.live.num_jobs >= 2

    def test_duplicate_uid_rejected(self):
        s = session()
        job = J("a", 0, 2)
        s.submit([job])
        with pytest.raises(AdmissionError) as err:
            s.submit([J("b", 0, 2, uid=job.uid)])
        assert err.value.reason == "duplicate_uid"

    def test_duplicate_uid_within_batch_rejected(self):
        s = session()
        with pytest.raises(AdmissionError):
            s.submit([J("a", 0, 2, uid=1), J("b", 0, 2, uid=1)])

    def test_inconsistent_bound_within_batch_rejected(self):
        s = session()
        with pytest.raises(AdmissionError) as err:
            s.submit([J("a", 0, 2), J("a", 1, 4)])
        assert err.value.reason == "inconsistent_delay_bound"
        assert err.value.index == 1

    def test_rejected_batch_leaves_no_trace(self):
        s = session()
        good = J("a", 0, 2)
        with pytest.raises(AdmissionError):
            # Last job reuses the first one's uid, poisoning the whole batch.
            s.submit([good, J("b", 0, 2), J("c", 0, 2, uid=good.uid)])
        assert s.pending == 0
        # The good job from the failed batch is still admissible.
        s.submit([good])
        assert s.pending == 1

    def test_stale_round_rejected_after_tick(self):
        s = session()
        s.tick()
        with pytest.raises(AdmissionError) as err:
            s.submit([J("a", 0, 2)])
        assert err.value.reason == "stale_round"

    def test_backpressure_bounds_in_flight_jobs(self):
        s = session(shards=1, max_pending=3)
        s.submit([J("a", 0, 8), J("a", 0, 8), J("a", 0, 8)])
        with pytest.raises(AdmissionError) as err:
            s.submit([J("a", 0, 8)])
        assert err.value.reason == "backpressure"

    def test_backpressure_releases_as_rounds_drain(self):
        s = session(shards=1, max_pending=2, n=2)
        s.submit([J("a", 0, 1), J("a", 0, 1)])
        with pytest.raises(AdmissionError):
            s.submit([J("a", 1, 1)])
        s.tick()  # both execute (n=2 covers them)
        s.submit([J("a", 1, 1)])

    def test_closed_session_rejects(self):
        s = session()
        s.close()
        with pytest.raises(AdmissionError) as err:
            s.submit([J("a", 0, 2)])
        assert err.value.reason == "closed"


class TestLockstepTick:
    def test_jobs_never_cross_shards(self):
        s = session(shards=2)
        jobs = [J(c, 0, 4) for c in range(12)]
        s.submit(jobs)
        for _ in range(5):  # rounds 0..4; round 4 is the drop round
            s.tick()
        stats = s.stats()
        done = [
            sh["ledger"]["drop_count"] + len(self.executed_of(s, i))
            for i, sh in enumerate(stats["shards"])
        ]
        assert sum(done) == 12

    @staticmethod
    def executed_of(s, shard_id):
        return s.shards[shard_id].sim.executed_uids

    def test_result_frame_shape(self):
        s = session(shards=2, n=8)
        s.submit([J(c, 0, 1) for c in range(10)])
        result = s.tick()
        assert result["round"] == 0
        assert result["executed"] == sorted(result["executed"])
        assert len(result["executed"]) + len(result["dropped"]) <= 10
        assert result["recolored"] >= 1
        assert result["cost"] > 0

    def test_stats_carry_per_shard_digests(self):
        s = session()
        s.submit([J("a", 0, 2)])
        s.tick()
        stats = s.stats()
        assert len(stats["shards"]) == 2
        for shard in stats["shards"]:
            assert set(shard["digests"]) == {
                "ledger", "schedule", "events", "run",
            }


class TestEngineDeterminism:
    """Per-shard live digests must be byte-identical to offline runs and
    across engines — the serve-side leg of the three-way oracle."""

    @staticmethod
    def _live_shard_digests(instance, engine, shards=2, n=8):
        s = ShardedSession(
            n=n,
            delta=instance.delta,
            policy_factory=lambda: make_policy(
                "dlru-edf", instance.delta, incremental=engine != "reference"
            ),
            shards=shards,
            engine=engine,
        )
        assert s.engine == engine
        for rnd in range(instance.horizon):
            jobs = list(instance.sequence.request(rnd))
            if jobs:
                s.submit(jobs)
            s.tick()
        while s.round < s.drain_horizon():
            s.tick()
        return [shard.digests() for shard in s.shards]

    @staticmethod
    def _offline_shard_digests(instance, engine, capacities, rounds):
        from repro.core.digest import component_digests
        from repro.core.engine import make_simulator
        from repro.core.request import Instance, RequestSequence

        per_shard = [[] for _ in capacities]
        for rnd in range(instance.horizon):
            for job in instance.sequence.request(rnd):
                per_shard[shard_of(job.color, len(capacities))].append(job)
        out = []
        for shard_id, jobs in enumerate(per_shard):
            shard_instance = Instance(
                RequestSequence(jobs, horizon=rounds),
                instance.delta,
                name=f"offline/shard{shard_id}",
            )
            policy = make_policy(
                "dlru-edf", instance.delta,
                incremental=engine != "reference",
            )
            result = make_simulator(
                shard_instance,
                policy,
                capacities[shard_id],
                engine=engine,
            ).run(horizon=rounds)
            out.append(component_digests(
                result.ledger,
                result.schedule,
                result.events,
                result.executed_uids,
                result.dropped_uids,
            ))
        return out

    @pytest.mark.parametrize("engine", ["reference", "incremental", "array"])
    def test_live_matches_offline(self, engine):
        from repro.workloads import poisson_workload

        instance = poisson_workload(delta=4, seed=17, horizon=64)
        live = self._live_shard_digests(instance, engine)
        rounds = self._rounds(instance)
        offline = self._offline_shard_digests(
            instance, engine, capacities=[4, 4], rounds=rounds
        )
        assert live == offline

    @staticmethod
    def _rounds(instance):
        # Mirror the session: tick through the drain horizon so both the
        # live and the offline runs cover every deadline.
        last = max(j.deadline for j in instance.sequence.jobs())
        return max(instance.horizon, last + 1)

    def test_engines_agree_live(self):
        from repro.workloads import poisson_workload

        instance = poisson_workload(delta=4, seed=29, horizon=64)
        per_engine = {
            engine: self._live_shard_digests(instance, engine)
            for engine in ("reference", "incremental", "array")
        }
        assert per_engine["array"] == per_engine["reference"]
        assert per_engine["incremental"] == per_engine["reference"]
