"""Request-scoped span tracing (``repro-trace-v2``).

Three contracts:

- **Golden schema**: a scripted protocol session produces a pinned list
  of normalized spans — byte-for-byte deterministic once ``wall_ms`` is
  stripped — so any change to the v2 schema is a conscious one.
- **Completeness**: every accepted submit's trace closes — admit votes
  for each voting shard, a commit, and one execute/drop per job.
- **Digest equality**: tracing is pure observation.  The same workload
  through a server with spans on and off yields identical component
  digests on all three engines.
"""

import asyncio
import json

from repro.core.job import Job
from repro.serve.loadgen import _replay
from repro.serve.server import SchedulingServer, ServeConfig
from repro.serve.protocol import decode_frame, encode_frame
from repro.telemetry.spans import (
    SPAN_NAMES,
    SPAN_SCHEMA,
    build_traces,
    normalize_span,
    read_spans,
)
from repro.workloads import poisson_workload


def scripted_session(tmp_path, frames, **config_kw):
    """Run ``frames`` through a spans-enabled server; returns the replies
    and the recorded ``(header, spans)``."""
    spans_path = tmp_path / "spans.jsonl"

    async def runner():
        defaults = dict(
            n=8, delta=1, policy="edf", metrics_port=None,
            spans=str(spans_path),
        )
        defaults.update(config_kw)
        server = SchedulingServer(ServeConfig(**defaults))
        await server.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        replies = []
        try:
            for frame in frames:
                writer.write(encode_frame(frame))
                await writer.drain()
                replies.append(decode_frame(await reader.readline()))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            await server.stop()
        return replies

    replies = asyncio.run(runner())
    return replies, read_spans(spans_path)


class TestGoldenSpanSchema:
    FRAMES = [
        {"type": "submit", "jobs": [
            {"color": "a", "delay_bound": 1, "uid": 1},
            {"color": "b", "delay_bound": 1, "uid": 2},
        ]},
        {"type": "submit", "jobs": [  # duplicate uid -> reject
            {"color": "c", "delay_bound": 1, "uid": 1},
        ]},
        {"type": "tick"},
    ]

    def run(self, tmp_path):
        return scripted_session(
            tmp_path, self.FRAMES, journal=str(tmp_path / "j.jsonl")
        )

    def test_header_pins_the_schema(self, tmp_path):
        _, (header, _) = self.run(tmp_path)
        assert header["schema"] == SPAN_SCHEMA == "repro-trace-v2"
        assert header["shards"] == 1

    def test_normalized_spans_are_pinned(self, tmp_path):
        replies, (_, spans) = self.run(tmp_path)
        assert [r["type"] for r in replies] == ["accept", "reject", "result"]
        root = "t000001/submit"
        assert [normalize_span(s) for s in spans] == [
            {"kind": "span", "trace": "t000001", "id": "t000001/admit/0",
             "name": "admit", "parent": root, "shard": 0,
             "attrs": {"jobs": 2, "verdict": "ok"}},
            {"kind": "span", "trace": "t000001", "id": "t000001/wal.intent",
             "name": "wal.intent", "parent": root, "seq": 1},
            {"kind": "span", "trace": "t000001", "id": "t000001/wal.commit",
             "name": "wal.commit", "parent": root, "seq": 1},
            {"kind": "span", "trace": "t000001", "id": "t000001/commit",
             "name": "commit", "parent": root, "round": 0, "seq": 1,
             "attrs": {"jobs": 2}},
            {"kind": "span", "trace": "t000001", "id": root,
             "name": "submit", "round": 0, "seq": 1,
             "attrs": {"jobs": 2, "outcome": "accept"}},
            {"kind": "span", "trace": "t000002", "id": "t000002/reject",
             "name": "reject", "parent": "t000002/submit",
             "attrs": {"index": 0, "reason": "duplicate_uid"}},
            {"kind": "span", "trace": "t000002", "id": "t000002/submit",
             "name": "submit", "round": 0, "seq": 2,
             "attrs": {"jobs": 1, "outcome": "reject"}},
            {"kind": "span", "trace": "t000001", "id": "t000001/execute/1",
             "name": "execute", "parent": root, "round": 0, "shard": 0,
             "attrs": {"uid": 1}},
            {"kind": "span", "trace": "t000001", "id": "t000001/execute/2",
             "name": "execute", "parent": root, "round": 0, "shard": 0,
             "attrs": {"uid": 2}},
        ]

    def test_two_runs_differ_only_in_wall_ms(self, tmp_path):
        _, (_, first) = self.run(tmp_path)
        _, (_, second) = self.run(tmp_path)
        assert [normalize_span(s) for s in first] == [
            normalize_span(s) for s in second
        ]

    def test_every_span_name_is_canonical(self, tmp_path):
        _, (_, spans) = self.run(tmp_path)
        assert {s["name"] for s in spans} <= set(SPAN_NAMES)


class TestTraceCompleteness:
    def run_workload(self, tmp_path, **config_kw):
        spans_path = tmp_path / "spans.jsonl"
        instance = poisson_workload(delta=4, seed=3, horizon=24)

        async def runner():
            defaults = dict(
                n=16, delta=4, policy="dlru-edf", shards=2,
                metrics_port=None, spans=str(spans_path),
            )
            defaults.update(config_kw)
            server = SchedulingServer(ServeConfig(**defaults))
            await server.start()
            try:
                return await _replay(
                    "127.0.0.1", server.port, instance,
                    verify=True, expected_delta=True,
                )
            finally:
                await server.stop()

        report = asyncio.run(runner())
        assert report.digests_match is True
        return read_spans(spans_path)

    def test_every_accepted_trace_closes(self, tmp_path):
        _, spans = self.run_workload(tmp_path)
        traces = build_traces(spans)
        assert traces, "the replay produced no traces"
        for trace_id, entry in traces.items():
            root = entry["root"]
            assert root is not None, f"{trace_id} has no root span"
            assert root["attrs"]["outcome"] == "accept"
            kids = [
                entry["nodes"][sid]
                for sid in entry["children"].get(root["id"], [])
            ]
            by_name: dict[str, list] = {}
            for kid in kids:
                by_name.setdefault(kid["name"], []).append(kid)
            # one admit vote per shard that received jobs, >= 1 overall
            assert sum(a["attrs"]["jobs"] for a in by_name["admit"]) == \
                root["attrs"]["jobs"]
            assert len(by_name["commit"]) == 1
            # every job resolves: executes + drops == jobs submitted
            resolved = len(by_name.get("execute", ())) + len(
                by_name.get("drop", ())
            )
            assert resolved == root["attrs"]["jobs"]

    def test_workers_mode_votes_round_trip_the_trace_id(self, tmp_path):
        _, spans = self.run_workload(
            tmp_path, workers=True, journal=str(tmp_path / "j.jsonl")
        )
        traces = build_traces(spans)
        assert traces
        for trace_id, entry in traces.items():
            admits = [
                s for s in entry["nodes"].values() if s["name"] == "admit"
            ]
            assert admits
            # the admit span's trace id is the one the worker echoed back
            # across the pipe, so a match proves end-to-end propagation
            assert all(s["trace"] == trace_id for s in admits)


class TestTracingNeverChangesDigests:
    def digests(self, tmp_path, engine, spans, instance):
        async def runner():
            config = ServeConfig(
                n=8, delta=2, policy="dlru-edf", shards=2, engine=engine,
                metrics_port=None,
                spans=str(tmp_path / f"{engine}-spans.jsonl") if spans
                else None,
            )
            server = SchedulingServer(config)
            await server.start()
            try:
                return await _replay(
                    "127.0.0.1", server.port, instance,
                    verify=True, expected_delta=True,
                )
            finally:
                await server.stop()

        report = asyncio.run(runner())
        assert report.digests_match is True
        return report.server_digests

    def test_spans_on_off_digest_equal_on_all_engines(self, tmp_path):
        # One shared instance: jobs carry process-global uids, so a fresh
        # generation per run would differ in uid (and EDF tie-breaking)
        # before tracing even entered the picture.
        instance = poisson_workload(delta=2, seed=1, horizon=16)
        for engine in ("reference", "incremental", "array"):
            assert self.digests(tmp_path, engine, True, instance) == \
                self.digests(tmp_path, engine, False, instance), engine
