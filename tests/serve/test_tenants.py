"""Multi-tenant BDR admission: contracts, meters, directory, wire frames.

The two invariants this suite pins down:

* *Schedulability is decided at registration time* — a contract the
  Theorem-1 composition check rejects never installs any state, and the
  rejection carries a machine-readable reason.
* *Enforcement is isolated* — an over-rate tenant loses exactly its own
  excess, and with no tenants registered the serve layer's wire frames
  and digests are byte-identical to a tenant-free build.
"""

import asyncio
import json
from fractions import Fraction

import pytest

from repro.core.job import Job
from repro.serve.session import ShardedSession, shard_of
from repro.serve.tenants import (
    ShardTenantMeter,
    TenantContract,
    TenantDirectory,
    TenantError,
    load_plan,
    shard_shares,
)

from tests.serve.test_server import Conn, wire_job, with_server


def contract(**kw):
    base = dict(name="t", colors=("a",), rate=Fraction(1), delay_bound=4, burst=2)
    base.update(kw)
    return TenantContract(**base)


class TestContract:
    def test_rate_parsing_forms(self):
        for raw, want in ((1, 1), ("1/4", Fraction(1, 4)), ("0.5", Fraction(1, 2)), (0.25, Fraction(1, 4))):
            c = TenantContract.from_dict(
                {"name": "x", "colors": ["a"], "rate": raw, "delay_bound": 3}
            )
            assert c.rate == want

    def test_burst_defaults_to_ceil_rate(self):
        c = TenantContract.from_dict(
            {"name": "x", "colors": ["a"], "rate": "5/2", "delay_bound": 3}
        )
        assert c.burst == 3
        tiny = TenantContract.from_dict(
            {"name": "x", "colors": ["a"], "rate": "1/8", "delay_bound": 3}
        )
        assert tiny.burst == 1  # never below one token

    def test_unknown_fields_rejected(self):
        with pytest.raises(TenantError) as exc:
            TenantContract.from_dict(
                {"name": "x", "colors": ["a"], "rate": 1, "delay_bound": 3, "qos": 9}
            )
        assert exc.value.reason == "bad_contract"

    @pytest.mark.parametrize("patch", [
        {"name": ""}, {"colors": ()}, {"colors": ("a", "a")},
        {"rate": Fraction(0)}, {"delay_bound": 0}, {"burst": 0},
        {"delay_bound": True},
    ])
    def test_invalid_contracts(self, patch):
        with pytest.raises(TenantError):
            contract(**patch)

    def test_round_trip(self):
        c = contract(rate=Fraction(3, 7), colors=("a", 5))
        assert TenantContract.from_dict(c.to_dict()) == c

    def test_load_plan(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"tenants": [
            {"name": "v", "colors": ["a"], "rate": 1, "delay_bound": 4},
        ]}))
        (c,) = load_plan(path)
        assert c.name == "v" and c.rate == 1
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"nope": []}))
        with pytest.raises(TenantError):
            load_plan(bad)


class TestShardShares:
    def test_single_shard_gets_everything(self):
        shares = shard_shares(contract(colors=("a", "b"), burst=5), shards=1)
        assert shares == {0: (Fraction(1), 5)}

    def test_rate_split_is_exact_and_burst_conserved(self):
        colors = tuple(range(12))
        c = contract(colors=colors, rate=Fraction(7, 3), burst=6)
        shares = shard_shares(c, shards=4)
        assert sum(r for r, _ in shares.values()) == Fraction(7, 3)
        # Burst is conserved when every occupied shard's floor is >= 1.
        assert sum(b for _, b in shares.values()) >= 6
        assert all(b >= 1 for _, b in shares.values())

    def test_only_occupied_shards_listed(self):
        c = contract(colors=("a",))
        shares = shard_shares(c, shards=4)
        assert set(shares) == {shard_of("a", 4)}


class TestMeter:
    def fresh(self):
        m = ShardTenantMeter()
        m.register("t", ["a"], Fraction(1), burst=2)
        return m

    def test_plan_is_pure(self):
        m = self.fresh()
        jobs = [(i, Job(color="a", arrival=0, delay_bound=4)) for i in range(5)]
        kept, shed = m.plan(jobs)
        assert [i for i, _ in kept] == [0, 1]
        assert [s["index"] for s in shed] == [2, 3, 4]
        assert all(s["tenant"] == "t" for s in shed)
        # Planning again gives the same answer: no state was touched.
        kept2, shed2 = m.plan(jobs)
        assert ([i for i, _ in kept2], shed2) == ([0, 1], shed)
        assert m.tokens() == {"t": Fraction(2)}

    def test_unmetered_colors_never_shed(self):
        m = self.fresh()
        jobs = [(i, Job(color="z", arrival=0, delay_bound=4)) for i in range(50)]
        kept, shed = m.plan(jobs)
        assert len(kept) == 50 and shed == []

    def test_debit_refill_cycle_sustains_rate(self):
        m = self.fresh()
        job = Job(color="a", arrival=0, delay_bound=4)
        for _ in range(10):  # 1 job/round at rate 1: never sheds
            kept, shed = m.plan([(0, job)])
            assert shed == []
            m.debit(j for _, j in kept)
            m.refill()
        assert m.tokens()["t"] == Fraction(2)  # back at burst

    def test_refill_caps_at_burst(self):
        m = self.fresh()
        for _ in range(5):
            m.refill()
        assert m.tokens()["t"] == Fraction(2)

    def test_fractional_rate_accumulates(self):
        m = ShardTenantMeter()
        m.register("slow", ["a"], Fraction(1, 3), burst=1)
        job = Job(color="a", arrival=0, delay_bound=9)
        admitted = 0
        for _ in range(9):
            kept, _ = m.plan([(0, job)])
            m.debit(j for _, j in kept)
            admitted += len(kept)
            m.refill()
        assert admitted == 3  # exactly rate * rounds, no float drift


class TestDirectory:
    def directory(self, shards=1, capacity=8, delta=2):
        return TenantDirectory(
            shards=shards, capacities=[capacity] * shards, delta=delta
        )

    def test_admit_then_duplicate_rejected(self):
        d = self.directory()
        d.admit(contract(name="a", delay_bound=4))
        with pytest.raises(TenantError) as exc:
            d.admit(contract(name="a", colors=("zz",), delay_bound=4))
        assert exc.value.reason == "duplicate_tenant"

    def test_color_conflict_rejected(self):
        d = self.directory()
        d.admit(contract(name="a", delay_bound=4))
        with pytest.raises(TenantError) as exc:
            d.admit(contract(name="b", colors=("a",), delay_bound=4))
        assert exc.value.reason == "color_conflict"

    def test_delay_bound_must_exceed_delta(self):
        d = self.directory(delta=4)
        with pytest.raises(TenantError) as exc:
            d.admit(contract(delay_bound=4))  # == delta: too tight
        assert exc.value.reason == "delay_too_tight"

    def test_rate_overflow_accumulates_across_tenants(self):
        d = self.directory(capacity=2)  # shard parent rate 2
        d.admit(contract(name="a", colors=("a",), rate=Fraction(3, 2), delay_bound=8))
        with pytest.raises(TenantError) as exc:
            d.admit(contract(name="b", colors=("b",), rate=1, delay_bound=8))
        assert exc.value.reason == "rate_overflow"
        # The failed admit left no residue: a fitting tenant still lands.
        d.admit(contract(name="c", colors=("c",), rate=Fraction(1, 2), delay_bound=8))

    def test_check_is_pure(self):
        d = self.directory()
        placement = d.check(contract(delay_bound=4))
        assert d.empty and placement[0]["shard"] == 0
        assert Fraction(placement[0]["window_supply"]) > 0


class TestSessionShedding:
    def session(self, shards=2):
        from repro.policies import make_policy

        return ShardedSession(
            n=8, delta=1, policy_factory=lambda: make_policy("edf", 1),
            shards=shards,
        )

    def job(self, color, bound=8):
        return Job(color=color, arrival=0, delay_bound=bound)

    def test_over_rate_tenant_shed_compliant_untouched(self):
        s = self.session()
        s.register_tenant(contract(name="t", colors=("a",), rate=1, burst=1, delay_bound=8))
        batch = [self.job("a") for _ in range(4)] + [self.job("z")]
        shed = s.submit(batch)
        assert [e["tenant"] for e in shed] == ["t"] * 3
        assert len(s.last_kept) == 2  # one metered + the unmetered color

    def test_shed_uids_never_poison_duplicate_tracking(self):
        s = self.session()
        s.register_tenant(contract(name="t", colors=("a",), rate=1, burst=1, delay_bound=8))
        first, second = self.job("a"), self.job("a")
        shed = s.submit([first, second])
        assert [e["uid"] for e in shed] == [second.uid]
        s.tick()
        # The shed job resubmits cleanly after a refill (same uid, next
        # round): it never entered duplicate tracking.
        retry = Job(color="a", arrival=1, delay_bound=8, uid=second.uid)
        assert s.submit([retry]) == []

    def test_digests_unchanged_without_tenants(self):
        jobs = [self.job(c % 5, bound=4) for c in range(20)]
        plain, metered = self.session(), self.session()
        metered.register_tenant(
            contract(name="t", colors=(0, 1, 2, 3, 4), rate=4, burst=20, delay_bound=8)
        )
        for s in (plain, metered):
            s.submit(list(jobs))
            for _ in range(6):
                s.tick()
        assert [sh.digests() for sh in plain.shards] == [
            sh.digests() for sh in metered.shards
        ]


class TestWireFrames:
    def wire_contract(self, **kw):
        base = {"name": "t", "colors": ["a"], "rate": 1, "delay_bound": 4}
        base.update(kw)
        return base

    def test_register_and_stats_over_wire(self):
        async def test(server, conn):
            ok = await conn.call({
                "type": "tenant_register", "id": 7,
                "tenant": self.wire_contract(),
            })
            assert ok["type"] == "tenant_ok" and ok["id"] == 7
            assert ok["name"] == "t" and ok["placement"][0]["shard"] == 0
            dup = await conn.call({
                "type": "tenant_register",
                "tenant": self.wire_contract(),
            })
            assert dup["type"] == "reject" and dup["reason"] == "duplicate_tenant"
            stats = await conn.call({"type": "tenant_stats"})
            assert stats["type"] == "tenant_stats"
            assert [t["name"] for t in stats["tenants"]] == ["t"]

        with_server(test, delta=2)

    def test_submit_reports_sheds_and_kept_count(self):
        async def test(server, conn):
            await conn.call({
                "type": "tenant_register",
                "tenant": self.wire_contract(rate=1, burst=1),
            })
            reply = await conn.call({
                "type": "submit", "id": 1,
                "jobs": [wire_job("a", 4) for _ in range(3)],
            })
            assert reply["type"] == "accept"
            assert reply["count"] == 1
            assert reply["shed"] == 2
            assert len(reply["shed_uids"]) == 2
            stats = await conn.call({"type": "tenant_stats"})
            (t,) = stats["tenants"]
            assert (t["submitted"], t["admitted"], t["shed"]) == (3, 1, 2)

        with_server(test, delta=2)

    def test_tenant_free_accept_has_no_shed_fields(self):
        async def test(server, conn):
            reply = await conn.call({
                "type": "submit", "jobs": [wire_job("a", 2)],
            })
            assert reply["type"] == "accept"
            assert "shed" not in reply and "shed_uids" not in reply

        with_server(test)

    def test_unschedulable_plan_rejected_with_reason(self):
        async def test(server, conn):
            reply = await conn.call({
                "type": "tenant_register",
                "tenant": self.wire_contract(rate=10**6),
            })
            assert reply["type"] == "reject"
            assert reply["reason"] == "rate_overflow"

        with_server(test, delta=2)
