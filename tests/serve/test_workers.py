"""Multi-process shard workers: parity, atomic admission, failover.

Every test drives a :class:`WorkerShardedSession` side by side with an
in-process :class:`ShardedSession` *oracle* built identically — the
worker layer's whole contract is that the process boundary is
unobservable: same accepts, same rejects (reason, message, index), same
result frames, same stats, same component digests.

The failover tests write the journal with the server's exact
write-ahead discipline (intent fsynced, commit marker, round records
after the round) via :class:`Harness`, then murder workers mid-run and
assert the respawned shard is byte-identical to the never-killed
oracle.
"""

import json
import os
import signal
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.job import Job
from repro.faults.plan import FaultPlan
from repro.policies import make_policy
from repro.serve.journal import commit_record, round_record, submit_record
from repro.serve.session import AdmissionError, ShardedSession, shard_of
from repro.serve.workers import WorkerShardedSession
from repro.telemetry.recorder import TelemetryRecorder
from repro.utils.jsonl import JsonlJournal


def colors_for_shards(shards: int, per_shard: int = 4) -> dict[int, list[str]]:
    """``per_shard`` probe colors routed to each shard id."""
    out: dict[int, list[str]] = {sid: [] for sid in range(shards)}
    i = 0
    while any(len(v) < per_shard for v in out.values()):
        color = f"c{i}"
        sid = shard_of(color, shards)
        if len(out[sid]) < per_shard:
            out[sid].append(color)
        i += 1
    return out


class Harness:
    """A worker session + oracle driven with the server's WAL discipline."""

    def __init__(
        self,
        tmp_path,
        shards=2,
        n=8,
        delta=1,
        policy="edf",
        telemetry=None,
        **worker_kw,
    ):
        self.path = str(tmp_path / "journal.jsonl")
        self.journal = JsonlJournal(self.path, truncate=True)
        self.ws = WorkerShardedSession(
            n=n,
            delta=delta,
            policy=policy,
            journal_path=self.path,
            shards=shards,
            telemetry=telemetry,
            **worker_kw,
        )
        self.oracle = ShardedSession(
            n=n,
            delta=delta,
            policy_factory=lambda: make_policy(policy, delta),
            shards=shards,
        )
        self.seq = 0

    def submit(self, jobs):
        """Both sessions, write-ahead: intent + marker before the commit."""
        self.ws.validate(jobs)
        self.oracle.validate(jobs)
        self.seq += 1
        self.journal.append(
            submit_record(self.seq, self.ws.round, jobs), sync=True
        )
        self.journal.append(commit_record(self.seq), sync=False)
        self.ws.commit(jobs)
        self.oracle.commit(jobs)

    def tick(self):
        live = self.ws.tick()
        control = self.oracle.tick()
        self.journal.append(round_record(live), sync=False)
        assert live == control
        return live

    def assert_identical(self):
        live, control = self.ws.stats(), self.oracle.stats()
        assert live == control
        assert [s["digests"] for s in live["shards"]] == [
            s["digests"] for s in control["shards"]
        ]

    def close(self):
        self.ws.close()
        self.oracle.close()
        self.journal.close()


@pytest.fixture
def harness(tmp_path):
    h = Harness(tmp_path, timeout=10.0)
    yield h
    h.close()


class TestParity:
    def test_lockstep_with_in_process_session(self, harness):
        jobs = [
            Job(color=f"c{i % 7}", arrival=r, delay_bound=3)
            for r in range(4)
            for i in range(6)
        ]
        harness.submit(jobs)
        for _ in range(harness.ws.drain_horizon()):
            harness.tick()
        assert harness.ws.drain_horizon() == harness.oracle.drain_horizon()
        assert harness.ws.pending == harness.oracle.pending == 0
        harness.assert_identical()

    @pytest.mark.parametrize("engine", ["incremental", "array"])
    def test_engines_match_across_the_process_boundary(self, tmp_path, engine):
        h = Harness(
            tmp_path, n=8, delta=2, policy="dlru-edf",
            engine=engine, timeout=10.0,
        )
        h.oracle = ShardedSession(
            n=8, delta=2,
            policy_factory=lambda: make_policy("dlru-edf", 2),
            shards=2, engine=engine,
        )
        try:
            h.submit([
                Job(color=c, arrival=r, delay_bound=4)
                for r in range(3)
                for c in "abcdef"
            ])
            for _ in range(8):
                h.tick()
            h.assert_identical()
        finally:
            h.close()

    def test_constructor_error_parity_for_bad_capacity(self, tmp_path):
        # dlru-edf rejects a capacity of 2; both layers must say so the
        # same way (ValueError naming the shard), not hang or traceback.
        kwargs = dict(n=8, delta=1, shards=4)
        with pytest.raises(ValueError, match="shard 0 got capacity 2"):
            ShardedSession(
                policy_factory=lambda: make_policy("dlru-edf", 1), **kwargs
            )
        with pytest.raises(ValueError, match="shard 0 got capacity 2"):
            WorkerShardedSession(
                policy="dlru-edf",
                journal_path=str(tmp_path / "j.jsonl"),
                timeout=10.0,
                **kwargs,
            )

    def test_commit_without_validate_raises(self, harness):
        with pytest.raises(RuntimeError, match="without a matching validate"):
            harness.ws.commit([Job(color="a", arrival=0, delay_bound=1)])


class TestCrossWorkerAdmission:
    """Phase-1 rejections must leave no trace on any worker."""

    def reject_both_ways(self, harness, jobs):
        with pytest.raises(AdmissionError) as live:
            harness.ws.submit(jobs)
        with pytest.raises(AdmissionError) as control:
            harness.oracle.submit(jobs)
        assert live.value.reason == control.value.reason
        assert live.value.index == control.value.index
        assert str(live.value) == str(control.value)
        return live.value

    def test_stale_round_on_second_worker_leaves_all_untouched(self, harness):
        palette = colors_for_shards(2)
        harness.submit([
            Job(color=palette[0][0], arrival=0, delay_bound=2),
            Job(color=palette[1][0], arrival=0, delay_bound=2),
        ])
        harness.tick()
        before = harness.ws.shard_digests()
        pending = harness.ws.pending
        # First job is fine and routes to shard 0; the second routes to
        # shard 1 and targets the already-consumed round 0.
        error = self.reject_both_ways(harness, [
            Job(color=palette[0][1], arrival=1, delay_bound=2),
            Job(color=palette[1][1], arrival=0, delay_bound=2),
        ])
        assert error.reason == "stale_round"
        assert error.index == 1
        assert harness.ws.shard_digests() == before
        assert harness.ws.pending == pending
        # The session still works and stays in lockstep with the oracle.
        harness.submit([Job(color=palette[0][1], arrival=1, delay_bound=2)])
        harness.tick()
        harness.assert_identical()

    def test_inconsistent_bound_against_another_shards_history(self, harness):
        palette = colors_for_shards(2)
        harness.submit([Job(color=palette[1][0], arrival=0, delay_bound=3)])
        before = harness.ws.shard_digests()
        error = self.reject_both_ways(harness, [
            Job(color=palette[0][0], arrival=0, delay_bound=2),
            Job(color=palette[1][0], arrival=0, delay_bound=5),
        ])
        assert error.reason == "inconsistent_delay_bound"
        assert error.index == 1
        assert harness.ws.shard_digests() == before

    def test_duplicate_uid_and_backpressure_parity(self, tmp_path):
        h = Harness(tmp_path, timeout=10.0, max_pending=4)
        h.oracle = ShardedSession(
            n=8, delta=1, policy_factory=lambda: make_policy("edf", 1),
            shards=2, max_pending=4,
        )
        try:
            first = Job(color="a", arrival=0, delay_bound=2)
            h.submit([first])
            error = self.reject_both_ways(
                h, [Job(color="b", arrival=0, delay_bound=2), first]
            )
            assert error.reason == "duplicate_uid"
            assert error.index == 1
            sid = shard_of("a", 2)
            flood = [
                Job(color="a", arrival=1, delay_bound=2) for _ in range(4)
            ]
            error = self.reject_both_ways(h, flood)
            assert error.reason == "backpressure"
            assert error.index is None
            assert f"shard {sid}" in str(error)
        finally:
            h.close()

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_atomicity_property(self, tmp_path_factory, data):
        """Random batches that fail phase 1 on the *second* of two target
        workers leave every worker's digests unchanged (and agree with
        the oracle on the verdict)."""
        tmp = tmp_path_factory.mktemp("atomicity")
        h = Harness(tmp, timeout=10.0)
        palette = colors_for_shards(2)
        try:
            # A random valid prefix so shards carry differing state; the
            # first batch pins palette[1][0] so the bound-violation case
            # below always has registered history to contradict.
            rounds = data.draw(st.integers(min_value=1, max_value=3))
            for r in range(rounds):
                batch = [
                    Job(
                        color=data.draw(
                            st.sampled_from(palette[0] + palette[1])
                        ),
                        arrival=r,
                        delay_bound=2,
                    )
                    for _ in range(data.draw(st.integers(1, 4)))
                ]
                if r == 0:
                    batch.append(
                        Job(color=palette[1][0], arrival=0, delay_bound=2)
                    )
                h.submit(batch)
                h.tick()
            before = h.ws.shard_digests()
            # Violation on shard 1, clean job on shard 0 first in batch.
            kind = data.draw(st.sampled_from(["stale_round", "bound"]))
            good = Job(
                color=data.draw(st.sampled_from(palette[0])),
                arrival=rounds,
                delay_bound=2,
            )
            if kind == "stale_round":
                bad = Job(
                    color=data.draw(st.sampled_from(palette[1])),
                    arrival=data.draw(st.integers(0, rounds - 1)),
                    delay_bound=2,
                )
            else:
                bad = Job(
                    color=palette[1][0],  # history pinned at bound 2 above
                    arrival=rounds,
                    delay_bound=7,
                )
            self.reject_both_ways(h, [good, bad])
            assert h.ws.shard_digests() == before
            h.assert_identical()
        finally:
            h.close()


class TestFailover:
    def test_sigkill_mid_run_resumes_digest_identical(self, harness):
        jobs = [
            Job(color=f"c{i}", arrival=r, delay_bound=3)
            for r in range(6)
            for i in range(8)
        ]
        harness.submit(jobs)
        harness.tick()
        harness.tick()
        victim = harness.ws._workers[0].worker.process.pid
        os.kill(victim, signal.SIGKILL)
        for _ in range(4):
            harness.tick()
        assert harness.ws._workers[0].attempt == 2
        harness.assert_identical()

    def test_kill_between_submits_replays_marked_batch(self, harness):
        palette = colors_for_shards(2)
        harness.submit([
            Job(color=palette[sid][i], arrival=0, delay_bound=4)
            for sid in (0, 1)
            for i in range(3)
        ])
        # The batch's marker is on disk but shard 1 may not have pushed
        # yet; killing here exercises replay-from-marker.
        os.kill(harness.ws._workers[1].worker.process.pid, signal.SIGKILL)
        harness.submit([Job(color=palette[1][3], arrival=1, delay_bound=4)])
        for _ in range(6):
            harness.tick()
        harness.assert_identical()

    def test_fault_plan_kill_and_respawn_metric(self, tmp_path):
        telemetry = TelemetryRecorder()
        plan = FaultPlan.from_arg(json.dumps({
            "seed": 0,
            "faults": [{"task": "serve/shard1/tick/*", "kind": "kill"}],
        }))
        h = Harness(
            tmp_path, timeout=10.0, telemetry=telemetry,
            fault_plan_json=plan.to_json(),
        )
        try:
            h.submit([
                Job(color=f"c{i}", arrival=r, delay_bound=2)
                for r in range(3)
                for i in range(6)
            ])
            for _ in range(5):
                h.tick()
            h.assert_identical()
            counters = telemetry.snapshot()["counters"]
            assert (
                counters["repro_serve_worker_respawns_total"]['shard="1"'] == 1
            )
        finally:
            h.close()

    def test_hang_fault_is_killed_and_respawned(self, tmp_path):
        plan = FaultPlan.from_arg(json.dumps({
            "seed": 0,
            "faults": [{
                "task": "serve/shard0/tick/*",
                "kind": "hang",
                "hang_seconds": 60,
            }],
        }))
        h = Harness(tmp_path, timeout=1.0, fault_plan_json=plan.to_json())
        try:
            h.submit([
                Job(color=f"c{i}", arrival=0, delay_bound=3)
                for i in range(6)
            ])
            t0 = time.monotonic()
            h.tick()
            # The hung worker was SIGKILLed at the 1s budget, not waited
            # out for the full 60s hang.
            assert time.monotonic() - t0 < 30
            assert h.ws._workers[0].attempt == 2
            h.tick()
            h.tick()
            h.assert_identical()
        finally:
            h.close()

    def test_retry_exhaustion_poisons_the_session(self, tmp_path):
        plan = FaultPlan.from_arg(json.dumps({
            "seed": 0,
            "faults": [{
                "task": "serve/shard0/tick/*", "kind": "kill", "times": -1,
            }],
        }))
        h = Harness(
            tmp_path, timeout=5.0, retries=1, fault_plan_json=plan.to_json()
        )
        try:
            h.ws.validate([Job(color="a", arrival=0, delay_bound=2)])
            h.ws.commit([Job(color="a", arrival=0, delay_bound=2)])
            with pytest.raises(RuntimeError, match="shard 0 unavailable"):
                h.ws.tick()
            with pytest.raises(RuntimeError, match="session failed"):
                h.ws.stats()
        finally:
            h.close()
