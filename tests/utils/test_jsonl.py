"""Unit tests for the shared fsync-append JSONL utility."""

import json

import pytest

from repro.utils.jsonl import (
    JsonlJournal,
    append_jsonl,
    json_line,
    read_jsonl,
)


class TestJsonLine:
    def test_newline_terminated(self):
        assert json_line({"a": 1}).endswith("\n")

    def test_keys_sorted(self):
        line = json_line({"b": 1, "a": 2})
        assert line.index('"a"') < line.index('"b"')

    def test_non_json_values_stringified(self):
        line = json_line({"p": object()})
        assert json.loads(line)["p"].startswith("<object object")


class TestAppendJsonl:
    def test_appends_one_line_per_call(self, tmp_path):
        path = tmp_path / "log.jsonl"
        assert append_jsonl(path, {"i": 0})
        assert append_jsonl(path, {"i": 1})
        rows = [json.loads(l) for l in path.read_text().splitlines()]
        assert rows == [{"i": 0}, {"i": 1}]

    def test_unwritable_path_returns_false(self, tmp_path):
        assert append_jsonl(tmp_path / "no" / "dir" / "x.jsonl", {}) is False


class TestJsonlJournal:
    def test_records_survive_close(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JsonlJournal(path) as journal:
            assert journal.append({"kind": "a"})
            assert journal.append({"kind": "b"})
            assert journal.records_written == 2
        rows = [json.loads(l) for l in path.read_text().splitlines()]
        assert [r["kind"] for r in rows] == ["a", "b"]

    def test_truncate_discards_previous_contents(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"stale": true}\n')
        with JsonlJournal(path, truncate=True) as journal:
            journal.append({"fresh": True})
        rows = [json.loads(l) for l in path.read_text().splitlines()]
        assert rows == [{"fresh": True}]

    def test_append_without_truncate_keeps_previous(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JsonlJournal(path) as journal:
            journal.append({"run": 1})
        with JsonlJournal(path) as journal:
            journal.append({"run": 2})
        assert len(path.read_text().splitlines()) == 2

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nest" / "j.jsonl"
        with JsonlJournal(path) as journal:
            assert journal.append({"x": 1})
        assert path.exists()

    def test_unwritable_journal_reports_unhealthy(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        # The parent "directory" is a regular file, so the open must fail.
        journal = JsonlJournal(blocker / "j.jsonl")
        assert journal.healthy is False
        assert journal.append({"x": 1}) is False
        journal.close()

    def test_sync_override_still_flushes(self, tmp_path):
        # sync=False skips the fsync but the record must still reach the
        # OS (flush): another process reading the file sees it at once,
        # which is exactly what worker-failover replay relies on.
        path = tmp_path / "j.jsonl"
        journal = JsonlJournal(path, truncate=True)
        try:
            assert journal.append({"x": 1}, sync=False)
            assert read_jsonl(path) == [{"x": 1}]
            assert journal.append({"x": 2}, sync=True)
            assert read_jsonl(path) == [{"x": 1}, {"x": 2}]
        finally:
            journal.close()


class TestReadJsonl:
    def test_missing_file_reads_empty(self, tmp_path):
        assert read_jsonl(tmp_path / "nope.jsonl") == []

    def test_reads_records_in_order(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')  # blank lines skipped
        assert read_jsonl(path) == [{"a": 1}, {"b": 2}]

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"a": 1}\n{"b": ')  # no trailing newline
        assert read_jsonl(path) == [{"a": 1}]

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"a": 1}\ngarbage\n{"b": 2}\n')
        with pytest.raises(ValueError, match="line 2"):
            read_jsonl(path)

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('[1, 2]\n')
        with pytest.raises(ValueError, match="not a JSON object"):
            read_jsonl(path)
