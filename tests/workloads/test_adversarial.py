"""Unit tests for the appendix adversary constructions."""

import pytest

from repro.core.schedule import validate_schedule
from repro.workloads.adversarial import (
    anti_dlru_instance,
    anti_dlru_offline_schedule,
    anti_edf_instance,
    anti_edf_offline_schedule,
)


class TestAntiDLRUInstance:
    def test_shape(self):
        inst = anti_dlru_instance(n=4, j=2, k=4, delta=1)
        seq = inst.sequence
        meta = inst.metadata
        # n/2 short colors + 1 long color.
        assert len(seq.colors()) == 3
        # Long color gets 2^k jobs at round 0.
        assert seq.jobs_per_color()[meta["long_color"]] == 16
        # Each short color gets delta jobs per multiple of 2^j.
        assert seq.jobs_per_color()[0] == (16 // 4) * 1

    def test_is_batched_and_rate_limited(self):
        inst = anti_dlru_instance(n=4, j=2, k=4, delta=1)
        assert inst.sequence.is_batched()
        # delta=1 <= 2^j and 2^k jobs <= 2^k: rate-limited.
        assert inst.sequence.is_rate_limited()

    def test_constraint_validation(self):
        with pytest.raises(ValueError, match="2\\^k"):
            anti_dlru_instance(n=4, j=3, k=3, delta=1)
        with pytest.raises(ValueError, match="delta"):
            anti_dlru_instance(n=4, j=2, k=5, delta=10)

    def test_strict_false_relaxes(self):
        anti_dlru_instance(n=4, j=2, k=5, delta=10, strict=False)

    def test_odd_n_rejected(self):
        with pytest.raises(ValueError):
            anti_dlru_instance(n=3, j=2, k=4, delta=1)

    def test_offline_schedule_valid_and_closed_form(self):
        n, j, k, delta = 4, 3, 5, 1
        inst = anti_dlru_instance(n=n, j=j, k=k, delta=delta)
        led = validate_schedule(
            anti_dlru_offline_schedule(inst), inst.sequence, delta
        )
        assert led.reconfig_cost == delta
        assert led.drop_cost == 2 ** (k - j - 1) * n * delta


class TestAntiEDFInstance:
    def test_shape(self):
        inst = anti_edf_instance(n=4, j=3, k=4, delta=5)
        seq = inst.sequence
        # n/2 + 1 colors.
        assert len(seq.colors()) == 3
        bounds = set(seq.delay_bounds().values())
        assert bounds == {8, 16, 32}

    def test_long_color_job_counts(self):
        inst = anti_edf_instance(n=4, j=3, k=4, delta=5)
        counts = inst.sequence.jobs_per_color()
        from repro.workloads.adversarial import LONG_COLOR_OFFSET
        assert counts[LONG_COLOR_OFFSET] == 2 ** 3
        assert counts[LONG_COLOR_OFFSET + 1] == 2 ** 4

    def test_constraint_validation(self):
        with pytest.raises(ValueError, match="delta > n"):
            anti_edf_instance(n=4, j=3, k=4, delta=3)
        with pytest.raises(ValueError, match="2\\^j > delta"):
            anti_edf_instance(n=4, j=2, k=4, delta=5)

    def test_offline_schedule_no_drops(self):
        inst = anti_edf_instance(n=4, j=3, k=5, delta=5)
        led = validate_schedule(
            anti_edf_offline_schedule(inst), inst.sequence, inst.delta
        )
        assert led.drop_cost == 0
        assert led.reconfig_cost == (4 // 2 + 1) * 5

    def test_short_jobs_stop_at_half_k(self):
        inst = anti_edf_instance(n=4, j=3, k=5, delta=5)
        short_arrivals = [
            j.arrival for j in inst.sequence.jobs() if j.color == 0
        ]
        assert max(short_arrivals) < 2 ** 4
