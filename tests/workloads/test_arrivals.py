"""Unit tests for the richer arrival models."""

import pytest

from repro.core.schedule import validate_schedule
from repro.reductions.pipeline import solve_online
from repro.workloads.arrivals import flash_crowd_workload, mmpp_workload


class TestMMPP:
    def test_deterministic(self):
        shapes = lambda inst: [
            (j.color, j.arrival) for j in inst.sequence.jobs()
        ]
        assert shapes(mmpp_workload(seed=1)) == shapes(mmpp_workload(seed=1))
        assert shapes(mmpp_workload(seed=1)) != shapes(mmpp_workload(seed=2))

    def test_autocorrelated_burstiness(self):
        """Surge states make per-round counts clump: the variance of
        windowed counts should exceed a Poisson process of the same mean."""
        import numpy as np

        inst = mmpp_workload(num_colors=1, horizon=2048, seed=3,
                             rates=(0.02, 3.0), dwell=64.0)
        counts = np.array([
            len(inst.sequence.request(r)) for r in range(2048)
        ], dtype=float)
        # Index of dispersion >> 1 signals modulation (Poisson would be ~1).
        dispersion = counts.var() / max(counts.mean(), 1e-9)
        assert dispersion > 2.0

    def test_validates_through_pipeline(self):
        inst = mmpp_workload(num_colors=4, horizon=128, delta=3, seed=4)
        res = solve_online(inst, n=8, record_events=False)
        validate_schedule(res.schedule, inst.sequence, inst.delta)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            mmpp_workload(rates=())
        with pytest.raises(ValueError):
            mmpp_workload(dwell=0.5)


class TestFlashCrowd:
    def test_surge_window_is_hot(self):
        inst = flash_crowd_workload(num_colors=4, horizon=400, seed=0,
                                    base_rate=0.1, surge_rate=5.0)
        begin, end = inst.metadata["surge_window"]
        surge_color = inst.metadata["surge_color"]
        inside = sum(
            1 for j in inst.sequence.jobs()
            if j.color == surge_color and begin <= j.arrival < end
        )
        outside = sum(
            1 for j in inst.sequence.jobs()
            if j.color == surge_color and not (begin <= j.arrival < end)
        )
        assert inside > 3 * max(outside, 1)

    def test_other_colors_unaffected(self):
        inst = flash_crowd_workload(num_colors=4, horizon=400, seed=1)
        begin, end = inst.metadata["surge_window"]
        window = max(end - begin, 1)
        other = [j for j in inst.sequence.jobs() if j.color == 1]
        inside_rate = sum(1 for j in other if begin <= j.arrival < end) / window
        outside_rate = len([j for j in other if not (begin <= j.arrival < end)]) / (400 - window)
        assert inside_rate < 3 * outside_rate + 0.5

    def test_surge_color_validated(self):
        with pytest.raises(ValueError):
            flash_crowd_workload(num_colors=4, surge_color=9)

    def test_validates_through_pipeline(self):
        inst = flash_crowd_workload(num_colors=4, horizon=128, delta=3, seed=2)
        res = solve_online(inst, n=8, record_events=False)
        validate_schedule(res.schedule, inst.sequence, inst.delta)
