"""Unit tests for workload composition."""

import pytest

from repro.core.schedule import validate_schedule
from repro.reductions.pipeline import solve_online
from repro.workloads.composite import concat, merge, shift
from repro.workloads.generators import poisson_workload, rate_limited_workload


def small(seed=0, delta=2):
    return rate_limited_workload(num_colors=3, horizon=16, delta=delta, seed=seed)


class TestShift:
    def test_arrivals_translated(self):
        base = small()
        moved = shift(base, 10)
        base_arrivals = sorted(j.arrival for j in base.sequence.jobs())
        moved_arrivals = sorted(j.arrival for j in moved.sequence.jobs())
        assert moved_arrivals == [a + 10 for a in base_arrivals]

    def test_horizon_extended(self):
        base = small()
        assert shift(base, 7).horizon == base.horizon + 7

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            shift(small(), -1)

    def test_zero_shift_preserves_shape(self):
        base = small()
        same = shift(base, 0)
        assert same.sequence.num_jobs == base.sequence.num_jobs


class TestMerge:
    def test_superimposes_all_jobs(self):
        a, b = small(0), small(1)
        merged = merge(a, b)
        assert merged.sequence.num_jobs == a.sequence.num_jobs + b.sequence.num_jobs

    def test_colors_namespaced(self):
        a, b = small(0), small(1)
        merged = merge(a, b)
        sources = {color[0] for color in merged.sequence.colors()}
        assert sources == {0, 1}

    def test_bound_conflicts_resolved_by_namespacing(self):
        # Same color id, different bounds across sources: merged instance
        # must still have consistent per-color bounds.
        a = rate_limited_workload(num_colors=2, horizon=16, delta=2, seed=0,
                                  min_exp=1, max_exp=1)
        b = rate_limited_workload(num_colors=2, horizon=16, delta=2, seed=0,
                                  min_exp=3, max_exp=3)
        merged = merge(a, b)
        merged.sequence.delay_bounds()  # raises if inconsistent

    def test_mismatched_delta_rejected(self):
        with pytest.raises(ValueError, match="Delta"):
            merge(small(delta=2), small(delta=3))

    def test_empty_call_rejected(self):
        with pytest.raises(ValueError):
            merge()

    def test_merged_instance_solvable(self):
        merged = merge(small(0), poisson_workload(
            num_colors=3, horizon=24, delta=2, seed=1))
        res = solve_online(merged, n=8, record_events=False)
        validate_schedule(res.schedule, merged.sequence, merged.delta)


class TestConcat:
    def test_phases_do_not_overlap(self):
        a, b = small(0), small(1)
        joined = concat(a, b, gap=5)
        phase0_max = max(
            j.arrival for j in joined.sequence.jobs() if j.color[0] == 0
        )
        phase1_min = min(
            j.arrival for j in joined.sequence.jobs() if j.color[0] == 1
        )
        assert phase1_min >= a.horizon + 5 > phase0_max

    def test_job_counts_preserved(self):
        a, b, c = small(0), small(1), small(2)
        joined = concat(a, b, c)
        assert joined.sequence.num_jobs == sum(
            x.sequence.num_jobs for x in (a, b, c)
        )

    def test_metadata_records_phases(self):
        joined = concat(small(0), small(1), name="two-phase")
        assert len(joined.metadata["phases"]) == 2

    def test_concat_solvable(self):
        joined = concat(small(0), small(1), gap=3)
        res = solve_online(joined, n=8, record_events=False)
        validate_schedule(res.schedule, joined.sequence, joined.delta)
