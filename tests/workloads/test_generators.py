"""Unit tests for the random workload generators."""

import pytest

from repro.workloads.generators import (
    batched_workload,
    bursty_workload,
    poisson_workload,
    rate_limited_workload,
    uniform_workload,
)


class TestDeterminism:
    @pytest.mark.parametrize("factory", [
        rate_limited_workload, batched_workload, poisson_workload,
        bursty_workload, uniform_workload,
    ])
    def test_same_seed_same_workload(self, factory):
        a = factory(seed=42)
        b = factory(seed=42)
        assert a.sequence.to_json() == b.sequence.to_json() or (
            # uids differ between constructions; compare shapes instead
            [
                (j.color, j.arrival, j.delay_bound) for j in a.sequence.jobs()
            ] == [
                (j.color, j.arrival, j.delay_bound) for j in b.sequence.jobs()
            ]
        )

    @pytest.mark.parametrize("factory", [
        rate_limited_workload, poisson_workload, bursty_workload,
    ])
    def test_different_seeds_differ(self, factory):
        a = factory(seed=0)
        b = factory(seed=1)
        shapes = lambda inst: [
            (j.color, j.arrival, j.delay_bound) for j in inst.sequence.jobs()
        ]
        assert shapes(a) != shapes(b)


class TestStructuralGuarantees:
    def test_rate_limited_is_rate_limited(self):
        for seed in range(3):
            inst = rate_limited_workload(seed=seed)
            assert inst.sequence.is_rate_limited()

    def test_batched_is_batched(self):
        for seed in range(3):
            assert batched_workload(seed=seed).sequence.is_batched()

    def test_batched_can_exceed_rate_limit(self):
        # With a high mean batch the workload must overflow D_l somewhere.
        inst = batched_workload(seed=0, mean_batch=6.0)
        assert not inst.sequence.is_rate_limited()

    def test_power_of_two_bounds_by_default(self):
        for factory in (rate_limited_workload, batched_workload, poisson_workload):
            assert factory(seed=1).sequence.has_power_of_two_bounds()

    def test_non_power_of_two_opt_in(self):
        inst = poisson_workload(seed=3, power_of_two=False, min_exp=2, max_exp=4)
        bounds = {j.delay_bound for j in inst.sequence.jobs()}
        assert any(b & (b - 1) for b in bounds)  # at least one non-power

    def test_per_color_bounds_consistent(self):
        for factory in (poisson_workload, bursty_workload, uniform_workload):
            factory(seed=2).sequence.delay_bounds()  # raises if inconsistent

    def test_horizon_covers_deadlines(self):
        for factory in (rate_limited_workload, poisson_workload, bursty_workload):
            inst = factory(seed=4)
            latest = max(j.deadline for j in inst.sequence.jobs())
            assert inst.horizon >= latest + 1


class TestLoadShapes:
    def test_rate_limited_load_scales(self):
        light = rate_limited_workload(seed=5, load=0.1).sequence.num_jobs
        heavy = rate_limited_workload(seed=5, load=0.9).sequence.num_jobs
        assert heavy > 2 * light

    def test_poisson_rate_scales(self):
        light = poisson_workload(seed=5, rate=0.1).sequence.num_jobs
        heavy = poisson_workload(seed=5, rate=1.0).sequence.num_jobs
        assert heavy > 3 * light

    def test_bursty_has_quiet_rounds(self):
        inst = bursty_workload(seed=6, num_colors=2, horizon=256)
        arrivals_per_round = [len(inst.sequence.request(r)) for r in range(256)]
        assert arrivals_per_round.count(0) > 10

    def test_metadata_recorded(self):
        inst = rate_limited_workload(seed=7)
        assert inst.metadata["seed"] == 7
        assert "bounds" in inst.metadata
