"""Tests for the lb_adversary generator (seeded OPT-gap workloads)."""

import pytest

from repro.workloads import lb_adversary_workload


class TestConstruction:
    def test_dlru_kind_shape(self):
        inst = lb_adversary_workload(kind="dlru", delta=2, seed=0)
        meta = inst.metadata
        assert meta["generator"] == "lb_adversary"
        assert meta["kind"] == "dlru"
        assert meta["num_short"] == 2
        assert meta["bound"] == 4
        # 2 short colors x periods x bound jobs + span long jobs.
        periods, bound = meta["periods"], meta["bound"]
        span = periods * bound
        assert inst.sequence.num_jobs == 2 * periods * bound + span
        assert inst.horizon == span + 1

    def test_edf_kind_uses_tight_deadlines(self):
        inst = lb_adversary_workload(kind="edf", delta=2, seed=0)
        assert inst.metadata["bound"] == 2
        short_colors = {
            j.color for j in inst.sequence.jobs()
            if j.color != inst.metadata["long_color"]
        }
        assert len(short_colors) == 2
        for job in inst.sequence.jobs():
            if job.color in short_colors:
                assert job.delay_bound == 2

    def test_long_color_spans_the_horizon(self):
        inst = lb_adversary_workload(kind="dlru", delta=2, seed=3)
        long_color = inst.metadata["long_color"]
        long_jobs = [
            j for j in inst.sequence.jobs() if j.color == long_color
        ]
        span = inst.metadata["periods"] * inst.metadata["bound"]
        assert len(long_jobs) == span
        assert all(j.arrival == 0 and j.delay_bound == span
                   for j in long_jobs)

    def test_horizon_scales_periods(self):
        short = lb_adversary_workload(kind="edf", delta=2, seed=0)
        long = lb_adversary_workload(kind="edf", delta=2, seed=0, horizon=13)
        assert long.metadata["periods"] > short.metadata["periods"]
        assert long.sequence.num_jobs > short.sequence.num_jobs


class TestDeterminismAndValidation:
    def test_same_seed_same_instance(self):
        a = lb_adversary_workload(kind="dlru", delta=2, seed=7)
        b = lb_adversary_workload(kind="dlru", delta=2, seed=7)
        assert [(j.color, j.arrival, j.delay_bound)
                for j in a.sequence.jobs()] == \
               [(j.color, j.arrival, j.delay_bound)
                for j in b.sequence.jobs()]

    def test_seed_only_shuffles_interleaving(self):
        # Per-(color, arrival-round) totals are seed-independent; only the
        # within-round ordering varies, so the OPT gap is seed-stable.
        def census(inst):
            counts: dict = {}
            for j in inst.sequence.jobs():
                key = (j.color, j.arrival, j.delay_bound)
                counts[key] = counts.get(key, 0) + 1
            return counts

        a = lb_adversary_workload(kind="edf", delta=2, seed=0)
        b = lb_adversary_workload(kind="edf", delta=2, seed=99)
        assert census(a) == census(b)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            lb_adversary_workload(kind="fifo")
        with pytest.raises(ValueError):
            lb_adversary_workload(kind="dlru", delta=0)
        with pytest.raises(ValueError):
            lb_adversary_workload(kind="dlru", horizon=3)

    def test_name_defaults_are_descriptive(self):
        inst = lb_adversary_workload(kind="edf", delta=3, seed=2)
        assert "lb-adversary-edf" in inst.name
        assert "seed=2" in inst.name
