"""Unit tests for the motivating-scenario workloads."""

from repro.workloads.scenarios import (
    background_shortterm_instance,
    datacenter_workload,
    router_workload,
)


class TestBackgroundShortterm:
    def test_deterministic(self):
        a = background_shortterm_instance()
        b = background_shortterm_instance()
        assert [
            (j.color, j.arrival, j.delay_bound) for j in a.sequence.jobs()
        ] == [
            (j.color, j.arrival, j.delay_bound) for j in b.sequence.jobs()
        ]

    def test_batched(self):
        inst = background_shortterm_instance()
        assert inst.sequence.is_batched()

    def test_rotation_covers_all_short_colors(self):
        inst = background_shortterm_instance(num_short=4, quiet_after=256)
        colors = inst.sequence.colors()
        assert {0, 1, 2, 3} <= colors

    def test_quiet_period_has_no_short_arrivals(self):
        inst = background_shortterm_instance(quiet_after=512)
        bg = inst.metadata["background_color"]
        late = [
            j for j in inst.sequence.jobs()
            if j.arrival >= 512 and j.color != bg
        ]
        assert late == []

    def test_background_arrives_at_zero(self):
        inst = background_shortterm_instance(background_jobs=16)
        bg = inst.metadata["background_color"]
        bg_jobs = [j for j in inst.sequence.jobs() if j.color == bg]
        assert len(bg_jobs) == 16
        assert all(j.arrival == 0 for j in bg_jobs)


class TestDatacenter:
    def test_deterministic_in_seed(self):
        shapes = lambda inst: [
            (j.color, j.arrival) for j in inst.sequence.jobs()
        ]
        assert shapes(datacenter_workload(seed=1)) == shapes(datacenter_workload(seed=1))
        assert shapes(datacenter_workload(seed=1)) != shapes(datacenter_workload(seed=2))

    def test_all_services_appear(self):
        inst = datacenter_workload(num_services=6, horizon=512, seed=0)
        assert len(inst.sequence.colors()) == 6

    def test_demand_drifts(self):
        """Each service's arrivals are nonuniform over time (the drift)."""
        inst = datacenter_workload(num_services=4, horizon=512, seed=3,
                                   drift_period=128.0, total_rate=8.0)
        # Compare service 0's arrivals in two windows a half-period apart.
        counts = [0, 0]
        for job in inst.sequence.jobs():
            if job.color == 0:
                if job.arrival < 64:
                    counts[0] += 1
                elif 64 <= job.arrival < 128:
                    counts[1] += 1
        assert counts[0] != counts[1]

    def test_per_service_bounds(self):
        inst = datacenter_workload(seed=4)
        inst.sequence.delay_bounds()  # consistent per color


class TestRouter:
    def test_deterministic_in_seed(self):
        a = router_workload(seed=5)
        b = router_workload(seed=5)
        assert a.sequence.num_jobs == b.sequence.num_jobs

    def test_bursts_present(self):
        inst = router_workload(seed=0, horizon=2048, burst_prob=0.05)
        per_round = [len(inst.sequence.request(r)) for r in range(2048)]
        assert max(per_round) > 8  # at least one heavy burst

    def test_all_classes_appear(self):
        inst = router_workload(num_classes=5, horizon=1024, seed=1)
        assert len(inst.sequence.colors()) == 5
