"""Unit tests for trace persistence."""

import pytest

from repro.core.job import Job
from repro.core.request import Instance, RequestSequence
from repro.workloads.trace import (
    instance_from_json,
    instance_to_json,
    load_instance,
    save_instance,
)
from repro.workloads.generators import bursty_workload, rate_limited_workload


class TestRoundTrip:
    def test_jobs_identical(self):
        inst = rate_limited_workload(num_colors=4, horizon=32, delta=3, seed=1)
        restored = instance_from_json(instance_to_json(inst))
        original = [(j.uid, j.color, j.arrival, j.delay_bound)
                    for j in inst.sequence.jobs()]
        back = [(j.uid, j.color, j.arrival, j.delay_bound)
                for j in restored.sequence.jobs()]
        assert original == back
        assert restored.delta == inst.delta
        assert restored.name == inst.name

    def test_metadata_survives_numpy_scalars(self):
        inst = bursty_workload(num_colors=3, horizon=32, delta=2, seed=2)
        restored = instance_from_json(instance_to_json(inst))
        assert restored.metadata["seed"] == 2
        assert list(restored.metadata["bounds"]) == [int(b) for b in inst.metadata["bounds"]]

    def test_horizon_preserved(self):
        seq = RequestSequence([Job(color=0, arrival=0, delay_bound=2)], horizon=50)
        inst = Instance(seq, 2, name="padded")
        restored = instance_from_json(instance_to_json(inst))
        assert restored.horizon == 50

    def test_file_round_trip(self, tmp_path):
        inst = rate_limited_workload(num_colors=3, horizon=16, delta=2, seed=3)
        path = tmp_path / "trace.json"
        save_instance(inst, path)
        restored = load_instance(path)
        assert restored.sequence.num_jobs == inst.sequence.num_jobs

    def test_same_costs_after_reload(self, tmp_path):
        from repro.reductions.pipeline import solve_online

        inst = bursty_workload(num_colors=4, horizon=64, delta=3, seed=4)
        path = tmp_path / "trace.json"
        save_instance(inst, path)
        restored = load_instance(path)
        a = solve_online(inst, n=8, record_events=False).total_cost
        b = solve_online(restored, n=8, record_events=False).total_cost
        assert a == b


class TestValidation:
    def test_rejects_foreign_json(self):
        with pytest.raises(ValueError, match="not a repro trace"):
            instance_from_json('{"format": "something-else"}')

    def test_rejects_garbage(self):
        with pytest.raises(Exception):
            instance_from_json("not json at all")


class TestCsvImport:
    def test_basic_rows(self):
        from repro.workloads.trace import instance_from_csv

        inst = instance_from_csv(
            "ssl,0,4\nssl,1,4\ndns,2,2\n", delta=2, name="demo"
        )
        assert inst.sequence.num_jobs == 3
        assert inst.sequence.delay_bounds() == {"ssl": 4, "dns": 2}

    def test_header_comments_and_blanks_skipped(self):
        from repro.workloads.trace import instance_from_csv

        text = "color,arrival,delay_bound\n# comment\n\n7,0,2\n"
        inst = instance_from_csv(text, delta=1)
        job = next(inst.sequence.jobs())
        assert job.color == 7  # numeric colors parsed as ints

    def test_malformed_row_reports_line(self):
        from repro.workloads.trace import instance_from_csv

        with pytest.raises(ValueError, match="line 2"):
            instance_from_csv("a,0,2\nbad row\n", delta=1)

    def test_inconsistent_bounds_rejected(self):
        from repro.workloads.trace import instance_from_csv

        with pytest.raises(ValueError, match="inconsistent"):
            instance_from_csv("a,0,2\na,1,4\n", delta=1)

    def test_file_loader_and_solve(self, tmp_path):
        from repro.reductions.pipeline import solve_online
        from repro.workloads.trace import load_csv

        path = tmp_path / "packets.csv"
        path.write_text("web,0,4\nweb,1,4\nvoip,1,2\nvoip,3,2\n")
        inst = load_csv(path, delta=2)
        assert inst.name == "packets"
        res = solve_online(inst, n=4)
        assert res.total_cost >= 0
